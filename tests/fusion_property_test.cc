// Property sweeps for Pattern-Fusion across a (τ, K, seed) grid: the
// algorithm's contract must hold for any parameterization, not only the
// paper's settings — every returned pattern frequent with a consistent
// support set, Lemma 5 monotonicity, pool-budget convergence semantics,
// and planted-pattern recovery on structured inputs.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/colossal_miner.h"
#include "core/pattern_fusion.h"
#include "data/generators.h"

namespace colossal {
namespace {

struct GridCase {
  double tau;
  int k;
  uint64_t seed;
};

class FusionGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(FusionGridTest, ContractHoldsOnDiagPlus) {
  const GridCase& config = GetParam();
  LabeledDatabase labeled = MakeDiagPlus(24, 12);

  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  ASSERT_TRUE(pool.ok());

  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.tau = config.tau;
  options.k = config.k;
  options.seed = config.seed;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(labeled.db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());

  // Contract 1: every returned pattern is frequent and carries the
  // correct support set.
  for (const Pattern& pattern : result->patterns) {
    EXPECT_GE(pattern.support, labeled.min_support_count);
    EXPECT_EQ(pattern.support_set, labeled.db.SupportSet(pattern.items));
    EXPECT_EQ(pattern.support, pattern.support_set.Count());
  }

  // Contract 2: Lemma 5 — iteration min sizes never decrease.
  int previous_min = 0;
  for (const FusionIterationStats& stats : result->iterations) {
    EXPECT_GE(stats.min_pattern_size, previous_min);
    EXPECT_LE(stats.min_pattern_size, stats.max_pattern_size);
    previous_min = stats.min_pattern_size;
  }

  // Contract 3: convergence flag matches the pool budget.
  if (result->converged) {
    EXPECT_LE(static_cast<int64_t>(result->patterns.size()),
              static_cast<int64_t>(options.k) *
                  options.max_superpatterns_per_seed);
  }

  // Contract 4: results are sorted largest-first.
  for (size_t i = 1; i < result->patterns.size(); ++i) {
    EXPECT_GE(result->patterns[i - 1].size(), result->patterns[i].size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusionGridTest,
    ::testing::Values(GridCase{0.1, 10, 1}, GridCase{0.1, 50, 2},
                      GridCase{0.25, 10, 3}, GridCase{0.25, 100, 4},
                      GridCase{0.5, 25, 5}, GridCase{0.5, 100, 6},
                      GridCase{0.75, 50, 7}, GridCase{0.9, 25, 8},
                      GridCase{1.0, 50, 9}));

// Recovery sweep: on DiagPlus the colossal block must be recovered for
// every reasonable (τ, seed) combination once K is large enough to keep
// it in the shrinking pool.
class FusionRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(FusionRecoveryTest, DiagPlusColossalAlwaysFound) {
  const auto [tau, seed] = GetParam();
  LabeledDatabase labeled = MakeDiagPlus(30, 15);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = tau;
  options.k = 120;
  options.seed = seed;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const Pattern& pattern : result->patterns) {
    if (pattern.items == labeled.planted[0]) found = true;
  }
  EXPECT_TRUE(found) << "tau=" << tau << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FusionRecoveryTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.75),
                       ::testing::Values(1u, 2u, 3u)));

// Planted-database recovery: a single strong planted pattern in noise
// must be recovered (exactly or as a superset that still contains it)
// across noise levels.
class PlantedRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PlantedRecoveryTest, StrongPlantedPatternIsCovered) {
  const double noise = GetParam();
  PlantedDatabaseOptions db_options;
  db_options.num_transactions = 200;
  db_options.num_items = 60;
  db_options.noise_density = noise;
  db_options.seed = 17;
  const Itemset planted({40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51});
  db_options.patterns.push_back({planted, 80});
  TransactionDatabase db = MakePlantedDatabase(db_options);

  ColossalMinerOptions options;
  options.min_support_count = 60;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 50;
  options.seed = 3;
  StatusOr<ColossalMiningResult> result = MineColossal(db, options);
  ASSERT_TRUE(result.ok());
  bool covered = false;
  for (const Pattern& pattern : result->patterns) {
    if (planted.IsSubsetOf(pattern.items)) covered = true;
  }
  EXPECT_TRUE(covered) << "noise=" << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, PlantedRecoveryTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2));

// Retention sampling: when attempts yield more candidates than the
// per-seed cap, the weighted sample must retain larger fused sets more
// often — exercised indirectly by checking the result still contains a
// colossal pattern with a tight cap.
TEST(FusionRetentionTest, TightCapStillReachesColossal) {
  LabeledDatabase labeled = MakeDiagPlus(30, 15);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  ASSERT_TRUE(pool.ok());
  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.k = 120;
  options.fusion_attempts_per_seed = 4;
  options.max_superpatterns_per_seed = 1;  // force the weighted sampler
  options.seed = 5;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(labeled.db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const Pattern& pattern : result->patterns) {
    if (pattern.items == labeled.planted[0]) found = true;
  }
  EXPECT_TRUE(found);
}

// A pool made of a single pattern converges trivially at every τ.
class SingletonPoolTest : public ::testing::TestWithParam<double> {};

TEST_P(SingletonPoolTest, ReturnsTheSingleton) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0, 1}))};
  PatternFusionOptions options;
  options.min_support_count = 100;
  options.tau = GetParam();
  options.k = 10;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(db, pool, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->patterns.size(), 1u);
  EXPECT_EQ(result->patterns[0].items, Itemset({0, 1}));
  EXPECT_TRUE(result->converged);
}

INSTANTIATE_TEST_SUITE_P(Taus, SingletonPoolTest,
                         ::testing::Values(0.1, 0.5, 1.0));

}  // namespace
}  // namespace colossal
