#include "core/evaluation.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colossal {
namespace {

// Example 1 from the paper (§5, Figure 5): P = {P1 = abcde, P2 = xyz},
// Q = {abcdf, acde, abcd, abcde, xy, xyz, yz}. r1 = 2/5, r2 = 1/3,
// Δ(A_P^Q) = 11/30 ≈ 0.37.
TEST(EvaluationTest, PaperExample1ComputesElevenThirtieths) {
  // Items: a=0 b=1 c=2 d=3 e=4 f=5 x=10 y=11 z=12.
  const Itemset p1({0, 1, 2, 3, 4});   // abcde
  const Itemset p2({10, 11, 12});      // xyz
  const std::vector<Itemset> mined = {p1, p2};
  const std::vector<Itemset> complete = {
      Itemset({0, 1, 2, 3, 5}),  // Q1 = abcdf, Edit to P1 = 2
      Itemset({0, 2, 3, 4}),     // Q2 = acde, Edit 1
      Itemset({0, 1, 2, 3}),     // Q3 = abcd, Edit 1
      p1,                        // Q4 = abcde, Edit 0
      Itemset({10, 11}),         // Q5 = xy, Edit 1
      p2,                        // Q6 = xyz, Edit 0
      Itemset({11, 12}),         // Q7 = yz, Edit 1
  };
  ApproximationReport report = EvaluateApproximation(mined, complete);
  EXPECT_DOUBLE_EQ(report.cluster_radii[0], 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(report.cluster_radii[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.error, 11.0 / 30.0);
  EXPECT_EQ(report.cluster_sizes[0], 4);
  EXPECT_EQ(report.cluster_sizes[1], 3);
  // Q1 is the farthest member of P1's cluster.
  EXPECT_EQ(report.assignments[0].center_index, 0);
  EXPECT_EQ(report.assignments[0].edit_distance, 2);
}

TEST(EvaluationTest, PerfectCoverHasZeroError) {
  const std::vector<Itemset> mined = {Itemset({1, 2}), Itemset({5, 6})};
  const std::vector<Itemset> complete = {Itemset({1, 2}), Itemset({5, 6})};
  ApproximationReport report = EvaluateApproximation(mined, complete);
  EXPECT_DOUBLE_EQ(report.error, 0.0);
}

TEST(EvaluationTest, EmptyReferenceSetHasZeroError) {
  ApproximationReport report =
      EvaluateApproximation({Itemset({1})}, std::vector<Itemset>{});
  EXPECT_DOUBLE_EQ(report.error, 0.0);
  EXPECT_TRUE(report.assignments.empty());
}

TEST(EvaluationTest, EmptyClustersContributeZero) {
  // Second center attracts nothing: all references are nearest to the
  // first.
  const std::vector<Itemset> mined = {Itemset({1, 2, 3}),
                                      Itemset({100, 101, 102})};
  const std::vector<Itemset> complete = {Itemset({1, 2}), Itemset({1, 2, 3})};
  ApproximationReport report = EvaluateApproximation(mined, complete);
  EXPECT_EQ(report.cluster_sizes[1], 0);
  EXPECT_DOUBLE_EQ(report.cluster_radii[1], 0.0);
  // r1 = Edit({1,2},{1,2,3})/3 = 1/3; Δ = (1/3 + 0)/2.
  EXPECT_DOUBLE_EQ(report.error, 1.0 / 6.0);
}

TEST(EvaluationTest, TiesBreakTowardLowestCenterIndex) {
  const std::vector<Itemset> mined = {Itemset({1}), Itemset({2})};
  // {1,2} is at distance 1 from both centers.
  ApproximationReport report =
      EvaluateApproximation(mined, {Itemset({1, 2})});
  EXPECT_EQ(report.assignments[0].center_index, 0);
}

TEST(EvaluationTest, ErrorScalesWithCenterSize) {
  // Same absolute edit distance is a smaller relative error for a
  // larger center — the definition divides by |α_i|.
  const std::vector<Itemset> small_center = {Itemset({1, 2})};
  const std::vector<Itemset> big_center = {
      Itemset({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})};
  const std::vector<Itemset> q_small = {Itemset({1, 2, 3})};
  const std::vector<Itemset> q_big = {Itemset({1, 2, 3, 4, 5, 6, 7, 8, 9})};
  EXPECT_DOUBLE_EQ(EvaluateApproximation(small_center, q_small).error, 0.5);
  EXPECT_DOUBLE_EQ(EvaluateApproximation(big_center, q_big).error, 0.1);
}

TEST(UniformSampleTest, SamplesDistinctMembers) {
  std::vector<Itemset> complete;
  for (ItemId i = 0; i < 50; ++i) complete.push_back(Itemset::Single(i));
  Rng rng(5);
  std::vector<Itemset> sample = UniformSample(complete, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  for (size_t a = 0; a < sample.size(); ++a) {
    for (size_t b = a + 1; b < sample.size(); ++b) {
      EXPECT_FALSE(sample[a] == sample[b]);
    }
  }
}

TEST(UniformSampleTest, ClampsToPopulation) {
  std::vector<Itemset> complete = {Itemset({1}), Itemset({2})};
  Rng rng(5);
  EXPECT_EQ(UniformSample(complete, 10, rng).size(), 2u);
  EXPECT_EQ(UniformSample(complete, 0, rng).size(), 0u);
}

TEST(FilterBySizeTest, KeepsOnlyLargeEnough) {
  const std::vector<Itemset> patterns = {Itemset({1}), Itemset({1, 2}),
                                         Itemset({1, 2, 3})};
  EXPECT_EQ(FilterBySize(patterns, 2).size(), 2u);
  EXPECT_EQ(FilterBySize(patterns, 4).size(), 0u);
  EXPECT_EQ(FilterBySize(patterns, 0).size(), 3u);
}

// A sampled approximation of a set by itself should have error 0 only
// when the sample covers all outliers; with K = |Q| UniformSample is the
// identity up to order.
TEST(UniformSampleTest, FullSampleGivesZeroError) {
  std::vector<Itemset> complete;
  for (ItemId i = 0; i < 20; ++i) {
    complete.push_back(Itemset({i, static_cast<ItemId>(i + 1)}));
  }
  Rng rng(7);
  std::vector<Itemset> sample =
      UniformSample(complete, static_cast<int64_t>(complete.size()), rng);
  EXPECT_DOUBLE_EQ(EvaluateApproximation(sample, complete).error, 0.0);
}

}  // namespace
}  // namespace colossal
