#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(ResolveNumThreadsTest, ExplicitCountsPassThrough) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
}

TEST(ResolveNumThreadsTest, AbsurdRequestsClampInsteadOfCrashing) {
  // std::thread throws std::system_error once the OS refuses; resolution
  // must clamp long before that.
  EXPECT_LE(ResolveNumThreads(500000), 512);
  EXPECT_GE(ResolveNumThreads(500000), 1);
}

TEST(ResolveNumThreadsTest, ZeroResolvesToAtLeastOne) {
  EXPECT_GE(ResolveNumThreads(0), 1);
}

TEST(ParallelPolicyTest, DefaultsToAutoDetect) {
  ParallelPolicy policy;
  EXPECT_EQ(policy.num_threads, 0);
  EXPECT_GE(policy.ResolvedThreads(), 1);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(3);
  bool ran = false;
  pool.ParallelFor(0, [&](int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.ParallelFor(5, [&](int64_t i) {
    seen[static_cast<size_t>(i)] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ResultsIndependentOfTaskOrdering) {
  // Slot-indexed outputs must not depend on which worker ran which index
  // or in what order: the same map over any pool size is identical.
  auto square = [](int64_t i) { return i * i; };
  ThreadPool one(1);
  ThreadPool four(4);
  const std::vector<int64_t> serial = ParallelMap(nullptr, 200, square);
  const std::vector<int64_t> single = ParallelMap(&one, 200, square);
  const std::vector<int64_t> sharded = ParallelMap(&four, 200, square);
  EXPECT_EQ(serial, single);
  EXPECT_EQ(serial, sharded);
}

TEST(ThreadPoolTest, PropagatesExceptionToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](int64_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionCancelsRemainingWork) {
  // Every body throws, so each driver's first body sets the cancelled
  // flag and the driver stops fetching: at most one execution per
  // driver, regardless of scheduling.
  ThreadPool pool(2);
  std::atomic<int64_t> executed{0};
  try {
    pool.ParallelFor(1000000, [&](int64_t) {
      executed.fetch_add(1);
      throw std::runtime_error("early");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LE(executed.load(), 2);
  EXPECT_GE(executed.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor joins after draining already-queued tasks.
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ParallelForFreeFunctionTest, NullPoolRunsInlineInOrder) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelMapTest, MapsOverLargeRangeWithManyThreads) {
  ThreadPool pool(8);
  const std::vector<int64_t> mapped =
      ParallelMap(&pool, 10000, [](int64_t i) { return i + 1; });
  const int64_t total = std::accumulate(mapped.begin(), mapped.end(),
                                        int64_t{0});
  EXPECT_EQ(total, int64_t{10000} * 10001 / 2);
}

}  // namespace
}  // namespace colossal
