#include "core/pattern_fusion.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/pattern_distance.h"
#include "core/pattern_pool.h"
#include "data/generators.h"

namespace colossal {
namespace {

TEST(PatternPoolTest, DeduplicatesByItemset) {
  TransactionDatabase db = MakePaperFigure3();
  PatternPool pool;
  EXPECT_TRUE(pool.Add(MakePattern(db, Itemset({0}))));
  EXPECT_FALSE(pool.Add(MakePattern(db, Itemset({0}))));
  EXPECT_TRUE(pool.Add(MakePattern(db, Itemset({0, 1}))));
  EXPECT_EQ(pool.size(), 2);
  EXPECT_TRUE(pool.Contains(Itemset({0})));
  EXPECT_FALSE(pool.Contains(Itemset({1})));
}

TEST(PatternPoolTest, SizeExtremes) {
  TransactionDatabase db = MakePaperFigure3();
  PatternPool pool;
  EXPECT_EQ(pool.MinPatternSize(), 0);
  pool.Add(MakePattern(db, Itemset({0, 1, 3})));
  pool.Add(MakePattern(db, Itemset({2})));
  EXPECT_EQ(pool.MinPatternSize(), 1);
  EXPECT_EQ(pool.MaxPatternSize(), 3);
}

TEST(PatternPoolTest, DrawSeedsAreDistinctAndClamped) {
  TransactionDatabase db = MakePaperFigure3();
  PatternPool pool;
  for (ItemId item = 0; item < 5; ++item) {
    pool.Add(MakePattern(db, Itemset::Single(item)));
  }
  Rng rng(3);
  std::vector<int64_t> seeds = pool.DrawSeeds(3, rng);
  EXPECT_EQ(seeds.size(), 3u);
  std::set<int64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_EQ(pool.DrawSeeds(100, rng).size(), 5u);
}

// --- FuseOnce -------------------------------------------------------------

TEST(FuseOnceTest, SeedAloneWhenBallIsSingleton) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0}))};
  FusionOutcome outcome = FuseOnce(pool, {0}, 0, 100, 0.5);
  EXPECT_EQ(outcome.fused.items, Itemset({0}));
  EXPECT_EQ(outcome.merged_count, 1);
}

TEST(FuseOnceTest, MergesCompatibleCorePatterns) {
  TransactionDatabase db = MakePaperFigure3();
  // ab (200) and ce (100) are both cores of abcef; fusing them yields
  // abce with support 100 ≥ τ·200.
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0, 1})),
                               MakePattern(db, Itemset({2, 3}))};
  FusionOutcome outcome = FuseOnce(pool, {0, 1}, 0, 100, 0.5);
  EXPECT_EQ(outcome.fused.items, Itemset({0, 1, 2, 3}));
  EXPECT_EQ(outcome.fused.support, 100);
  EXPECT_EQ(outcome.merged_count, 2);
}

TEST(FuseOnceTest, RejectsMergeBreakingFrequency) {
  LabeledDatabase labeled = MakeDiagPlus(10, 5);
  // Diag item {0} and colossal item {10} have disjoint support sets: the
  // merge would have support 0 < min_support.
  std::vector<Pattern> pool = {MakePattern(labeled.db, Itemset({0})),
                               MakePattern(labeled.db, Itemset({10}))};
  FusionOutcome outcome = FuseOnce(pool, {0, 1}, 0, 5, 0.5);
  EXPECT_EQ(outcome.fused.items, Itemset({0}));
  EXPECT_EQ(outcome.merged_count, 1);
}

TEST(FuseOnceTest, RejectsMergeBreakingTauCoreInvariant) {
  TransactionDatabase db = MakePaperFigure3();
  // Seed (ce): support 100. Candidate (a): support 300. Merged support
  // would be 100 < τ·300 = 150 at τ = 0.5: the member (a) would not be a
  // τ-core of the result, so the merge must be refused.
  std::vector<Pattern> pool = {MakePattern(db, Itemset({2, 3})),
                               MakePattern(db, Itemset({0}))};
  FusionOutcome outcome = FuseOnce(pool, {0, 1}, 0, 50, 0.5);
  EXPECT_EQ(outcome.fused.items, Itemset({2, 3}));
  // With τ = 0.3 the same merge passes (100 ≥ 0.3·300).
  outcome = FuseOnce(pool, {0, 1}, 0, 50, 0.3);
  EXPECT_EQ(outcome.fused.items, Itemset({0, 2, 3}));
}

TEST(FuseOnceTest, ResultSatisfiesTauCoreInvariantForAllMerged) {
  // Property: every merged member must be a τ-core of the fused result.
  LabeledDatabase labeled = MakeDiagPlus(12, 6);
  std::vector<Pattern> pool;
  for (ItemId item = 0; item < labeled.db.num_items(); ++item) {
    Pattern p = MakePattern(labeled.db, Itemset::Single(item));
    if (p.support >= 6) pool.push_back(std::move(p));
  }
  std::vector<int64_t> order;
  for (size_t i = 0; i < pool.size(); ++i) {
    order.push_back(static_cast<int64_t>(i));
  }
  const double tau = 0.5;
  FusionOutcome outcome = FuseOnce(pool, order, 0, 6, tau);
  for (int64_t index : order) {
    const Pattern& member = pool[static_cast<size_t>(index)];
    if (member.items.IsSubsetOf(outcome.fused.items)) {
      EXPECT_GE(static_cast<double>(outcome.fused.support) + 1e-9,
                tau * static_cast<double>(member.support))
          << member.items.ToString();
    }
  }
}

// --- RunPatternFusion ------------------------------------------------------

TEST(PatternFusionTest, ValidatesOptions) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0}))};
  PatternFusionOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(RunPatternFusion(db, pool, options).ok());
  options.min_support_count = 100;
  options.tau = 0.0;
  EXPECT_FALSE(RunPatternFusion(db, pool, options).ok());
  options.tau = 1.5;
  EXPECT_FALSE(RunPatternFusion(db, pool, options).ok());
  options.tau = 0.5;
  options.k = 0;
  EXPECT_FALSE(RunPatternFusion(db, pool, options).ok());
  options.k = 10;
  EXPECT_FALSE(RunPatternFusion(db, {}, options).ok());
}

TEST(PatternFusionTest, RejectsInfrequentPoolPatterns) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0, 1, 2, 3, 4}))};
  PatternFusionOptions options;
  options.min_support_count = 200;  // abcef has support 100
  StatusOr<PatternFusionResult> result = RunPatternFusion(db, pool, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternFusionTest, SmallPoolReturnsImmediately) {
  TransactionDatabase db = MakePaperFigure3();
  std::vector<Pattern> pool = {MakePattern(db, Itemset({0})),
                               MakePattern(db, Itemset({1}))};
  PatternFusionOptions options;
  options.min_support_count = 100;
  options.k = 10;
  StatusOr<PatternFusionResult> result = RunPatternFusion(db, pool, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(result->iterations.empty());
  EXPECT_EQ(result->patterns.size(), 2u);
}

TEST(PatternFusionTest, RecoversAbcefFromFigure3) {
  TransactionDatabase db = MakePaperFigure3();
  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(db, 100, 2);
  ASSERT_TRUE(pool.ok());
  // 5 frequent items + 10 frequent pairs.
  EXPECT_EQ(pool->size(), 15u);

  PatternFusionOptions options;
  options.min_support_count = 100;
  options.tau = 0.5;
  options.k = 5;
  options.seed = 11;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  bool found_abcef = false;
  for (const Pattern& pattern : result->patterns) {
    if (pattern.items == Itemset({0, 1, 2, 3, 4})) found_abcef = true;
    // Everything returned must be frequent.
    EXPECT_GE(pattern.support, 100);
    EXPECT_EQ(pattern.support, db.Support(pattern.items));
  }
  EXPECT_TRUE(found_abcef);
}

TEST(PatternFusionTest, FindsColossalPatternInDiagPlus) {
  LabeledDatabase labeled = MakeDiagPlus(40, 20);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  ASSERT_TRUE(pool.ok());
  // 40 diag items + C(40,2) diag pairs + 39 colossal items + C(39,2)
  // colossal pairs = 40 + 780 + 39 + 741 = 1600.
  EXPECT_EQ(pool->size(), 1600u);

  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.tau = 0.5;
  options.k = 100;
  options.seed = 7;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(labeled.db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  bool found_colossal = false;
  for (const Pattern& pattern : result->patterns) {
    if (pattern.items == labeled.planted[0]) found_colossal = true;
  }
  EXPECT_TRUE(found_colossal);
  // The largest pattern in the result must be the size-39 colossal one —
  // mid-size diag fusions stop at size 20.
  EXPECT_EQ(result->patterns[0].size(), 39);
}

TEST(PatternFusionTest, DiagFusionsReachExactlySupportBoundary) {
  // On pure Diag_n (no colossal block), fused patterns grow until their
  // support hits the threshold: size n/2 patterns with support n/2.
  TransactionDatabase db = MakeDiag(20);
  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(db, 10, 2);
  ASSERT_TRUE(pool.ok());
  PatternFusionOptions options;
  options.min_support_count = 10;
  options.tau = 0.5;
  options.k = 20;
  options.seed = 13;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  for (const Pattern& pattern : result->patterns) {
    EXPECT_GE(pattern.support, 10);
    EXPECT_LE(pattern.size(), 10);
  }
  // The fusion should push most survivors to the frontier size n/2.
  EXPECT_EQ(result->patterns[0].size(), 10);
}

TEST(PatternFusionTest, Lemma5MinSizeNeverDecreases) {
  LabeledDatabase labeled = MakeDiagPlus(20, 10);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, labeled.min_support_count, 1);
  ASSERT_TRUE(pool.ok());
  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.k = 5;  // small K forces several iterations
  options.seed = 23;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(labeled.db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  int previous = 1;
  for (const FusionIterationStats& stats : result->iterations) {
    EXPECT_GE(stats.min_pattern_size, previous);
    previous = stats.min_pattern_size;
  }
}

TEST(PatternFusionTest, DeterministicForFixedSeed) {
  LabeledDatabase labeled = MakeDiagPlus(20, 10);
  StatusOr<std::vector<Pattern>> pool_a =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  StatusOr<std::vector<Pattern>> pool_b =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  ASSERT_TRUE(pool_a.ok());
  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.k = 30;
  options.seed = 99;
  StatusOr<PatternFusionResult> a =
      RunPatternFusion(labeled.db, *std::move(pool_a), options);
  StatusOr<PatternFusionResult> b =
      RunPatternFusion(labeled.db, *std::move(pool_b), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->patterns.size(), b->patterns.size());
  for (size_t i = 0; i < a->patterns.size(); ++i) {
    EXPECT_EQ(a->patterns[i].items, b->patterns[i].items);
  }
  // A different seed should explore differently (not guaranteed in
  // theory, overwhelmingly likely here).
  options.seed = 100;
  StatusOr<std::vector<Pattern>> pool_c =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  StatusOr<PatternFusionResult> c =
      RunPatternFusion(labeled.db, *std::move(pool_c), options);
  ASSERT_TRUE(c.ok());
  bool any_difference = a->patterns.size() != c->patterns.size();
  if (!any_difference) {
    for (size_t i = 0; i < a->patterns.size(); ++i) {
      if (!(a->patterns[i].items == c->patterns[i].items)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(PatternFusionTest, AllReturnedPatternsAreFrequentAndConsistent) {
  LabeledDatabase labeled = MakeProgramTraceLike(1);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, labeled.min_support_count, 2);
  ASSERT_TRUE(pool.ok());
  PatternFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.tau = 0.25;
  options.k = 40;
  options.seed = 3;
  StatusOr<PatternFusionResult> result =
      RunPatternFusion(labeled.db, *std::move(pool), options);
  ASSERT_TRUE(result.ok());
  for (const Pattern& pattern : result->patterns) {
    EXPECT_GE(pattern.support, labeled.min_support_count);
    EXPECT_EQ(pattern.support, labeled.db.Support(pattern.items));
    EXPECT_EQ(pattern.support_set.Count(), pattern.support);
  }
}

TEST(BuildInitialPoolTest, AprioriAndEclatPoolsAreIdentical) {
  LabeledDatabase labeled = MakeDiagPlus(16, 8);
  StatusOr<std::vector<Pattern>> apriori = BuildInitialPool(
      labeled.db, labeled.min_support_count, 3, PoolMiner::kApriori);
  StatusOr<std::vector<Pattern>> eclat = BuildInitialPool(
      labeled.db, labeled.min_support_count, 3, PoolMiner::kEclat);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(eclat.ok());
  auto key = [](const Pattern& pattern) { return pattern.items; };
  std::vector<Itemset> a;
  std::vector<Itemset> b;
  for (const Pattern& pattern : *apriori) a.push_back(key(pattern));
  for (const Pattern& pattern : *eclat) b.push_back(key(pattern));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(BuildInitialPoolTest, FailsWhenNothingIsFrequent) {
  TransactionDatabase db = MakeDiag(6);
  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(db, 6, 2);
  EXPECT_FALSE(pool.ok());
  EXPECT_EQ(pool.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BuildInitialPoolTest, RejectsBadBound) {
  TransactionDatabase db = MakeDiag(6);
  EXPECT_FALSE(BuildInitialPool(db, 3, 0).ok());
}

}  // namespace
}  // namespace colossal
