#include "data/transaction_database.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/itemset.h"

namespace colossal {
namespace {

TransactionDatabase SmallDb() {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({
      {0, 1, 2},
      {1, 2},
      {0, 2},
      {2, 3},
  });
  EXPECT_TRUE(db.ok());
  return *std::move(db);
}

TEST(TransactionDatabaseTest, BasicShape) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.num_transactions(), 4);
  EXPECT_EQ(db.num_items(), 4u);
  EXPECT_EQ(db.TotalItemOccurrences(), 9);
  EXPECT_DOUBLE_EQ(db.Density(), 9.0 / 16.0);
}

TEST(TransactionDatabaseTest, NormalizesUnsortedDuplicates) {
  StatusOr<TransactionDatabase> db =
      TransactionDatabase::FromTransactions({{3, 1, 3, 2, 1}});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction(0), Itemset({1, 2, 3}));
}

TEST(TransactionDatabaseTest, RejectsEmptyDatabase) {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({});
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransactionDatabaseTest, RejectsEmptyTransaction) {
  StatusOr<TransactionDatabase> db =
      TransactionDatabase::FromTransactions({{1}, {}});
  EXPECT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("transaction 1"), std::string::npos);
}

TEST(TransactionDatabaseTest, RejectsHugeItemIds) {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions(
      {{TransactionDatabase::kMaxItems}});
  EXPECT_FALSE(db.ok());
}

TEST(TransactionDatabaseTest, ItemTidsetsMatchRows) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.item_tidset(0).ToIndices(), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(db.item_tidset(1).ToIndices(), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(db.item_tidset(2).ToIndices(), (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(db.item_tidset(3).ToIndices(), (std::vector<int64_t>{3}));
  EXPECT_EQ(db.ItemSupport(2), 4);
}

TEST(TransactionDatabaseTest, SupportSetIntersectsTidsets) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.SupportSet(Itemset({0, 1})).ToIndices(),
            (std::vector<int64_t>{0}));
  EXPECT_EQ(db.Support(Itemset({0, 1})), 1);
  EXPECT_EQ(db.Support(Itemset({2})), 4);
  EXPECT_EQ(db.Support(Itemset({0, 3})), 0);
}

TEST(TransactionDatabaseTest, EmptyItemsetSupportedEverywhere) {
  TransactionDatabase db = SmallDb();
  EXPECT_EQ(db.Support(Itemset()), 4);
  EXPECT_EQ(db.SupportSet(Itemset()).Count(), 4);
}

// Lemma 1: α ⊆ α' ⇒ D(α') ⊆ D(α).
TEST(TransactionDatabaseTest, Lemma1AntiMonotonicity) {
  TransactionDatabase db = SmallDb();
  const Itemset small({2});
  const Itemset big({1, 2});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(db.SupportSet(big).IsSubsetOf(db.SupportSet(small)));
}

TEST(TransactionDatabaseTest, MinSupportCountRounding) {
  TransactionDatabase db = SmallDb();  // 4 transactions
  EXPECT_EQ(db.MinSupportCount(0.0), 0);
  EXPECT_EQ(db.MinSupportCount(0.5), 2);
  EXPECT_EQ(db.MinSupportCount(0.51), 3);
  EXPECT_EQ(db.MinSupportCount(0.75), 3);
  EXPECT_EQ(db.MinSupportCount(1.0), 4);
  // Exact integer products must not round up.
  EXPECT_EQ(db.MinSupportCount(0.25), 1);
}

TEST(TransactionDatabaseTest, DefaultConstructedIsEmptyPlaceholder) {
  TransactionDatabase db;
  EXPECT_EQ(db.num_transactions(), 0);
  EXPECT_EQ(db.num_items(), 0u);
}

}  // namespace
}  // namespace colossal
