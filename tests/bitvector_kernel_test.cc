#include "common/bitvector_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/bitvector.h"
#include "common/rng.h"

namespace colossal {
namespace {

// Differential suite: every Bitvector operation, run once through the
// dispatched backend (AVX2 where the build and CPU carry it) and once
// with the scalar backend pinned, must agree bit for bit. On a machine
// without AVX2 both runs resolve to scalar and the suite degenerates to
// a self-check — still a valid (if weaker) pass; the CI scalar leg plus
// an AVX2 host together cover both backends.

// Deterministic random vector of `num_bits` with roughly density·bits
// set. Exercised lengths include 0, sub-word, exact word multiples, and
// tails of every residue.
Bitvector RandomVector(Rng& rng, int64_t num_bits, double density) {
  Bitvector v(num_bits);
  if (num_bits == 0) return v;
  const int64_t target = static_cast<int64_t>(num_bits * density);
  for (int64_t i = 0; i < target; ++i) {
    v.Set(rng.UniformInt(0, num_bits - 1));
  }
  return v;
}

struct OpResults {
  std::string and_bits, or_bits, andnot_bits, or_shifted_bits;
  int64_t count_a, and_count, or_count;
  bool none_a, and_none, subset, equal;
  std::vector<int64_t> indices;
  uint64_t hash_a;
};

OpResults RunOps(const Bitvector& a, const Bitvector& b, int64_t shift_offset,
                 const Bitvector& shift_dst) {
  OpResults r;
  Bitvector and_v = a;
  and_v.AndWith(b);
  r.and_bits = and_v.ToString();
  Bitvector or_v = a;
  or_v.OrWith(b);
  r.or_bits = or_v.ToString();
  Bitvector andnot_v = a;
  andnot_v.AndNotWith(b);
  r.andnot_bits = andnot_v.ToString();
  Bitvector shifted = shift_dst;
  shifted.OrWithShifted(a, shift_offset);
  r.or_shifted_bits = shifted.ToString();
  r.count_a = a.Count();
  r.and_count = Bitvector::AndCount(a, b);
  r.or_count = Bitvector::OrCount(a, b);
  r.none_a = a.None();
  r.and_none = Bitvector::AndNone(a, b);
  r.subset = a.IsSubsetOf(b);
  // a&b ⊆ b holds for any input; a false here is a kernel bug.
  EXPECT_TRUE(and_v.IsSubsetOf(b));
  r.equal = (a == b);
  r.indices = a.ToIndices();
  r.hash_a = a.HashValue();
  return r;
}

class BitvectorKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetBitvectorForceScalar(false); }
};

TEST_F(BitvectorKernelTest, BackendNamesAreSane) {
  SetBitvectorForceScalar(true);
  EXPECT_STREQ(ActiveBitvectorKernels().name, "scalar");
  SetBitvectorForceScalar(false);
  const std::string active = ActiveBitvectorKernels().name;
  EXPECT_TRUE(active == "scalar" || active == "avx2") << active;
  // Un-forcing re-resolves honoring the environment, so CI's
  // COLOSSAL_FORCE_SCALAR leg still runs this suite all-scalar.
  const char* env = std::getenv("COLOSSAL_FORCE_SCALAR");
  const bool env_forces_scalar =
      env != nullptr && env[0] != '\0' && std::string(env) != "0";
  if (!env_forces_scalar && Avx2BitvectorKernels() != nullptr &&
      CpuSupportsAvx2()) {
    EXPECT_EQ(active, "avx2");
  } else {
    EXPECT_EQ(active, "scalar");
  }
}

TEST_F(BitvectorKernelTest, DifferentialScalarVsDispatched) {
  // ~1k vector pairs across adversarial lengths: empty, single word,
  // exact word boundaries, partial tails of every alignment class, and
  // sizes past the widest vector loop (4 words per AVX2 iteration).
  const std::vector<int64_t> lengths = {0,   1,   37,  63,  64,  65,
                                        127, 128, 129, 191, 255, 256,
                                        257, 300, 511, 513, 1000};
  const std::vector<double> densities = {0.0, 0.05, 0.5, 0.95, 1.0};
  int pairs = 0;
  for (int64_t num_bits : lengths) {
    for (double density : densities) {
      for (int rep = 0; rep < 3; ++rep) {
        Rng rng(0x5eed + num_bits * 1000 + rep * 7 +
                static_cast<uint64_t>(density * 100));
        const Bitvector a = RandomVector(rng, num_bits, density);
        const Bitvector b = RandomVector(rng, num_bits, 1.0 - density / 2);
        // Misaligned stitch target: offset exercises word_shift and a
        // nonzero bit_shift in the same call.
        const int64_t offset = num_bits == 0 ? 0 : rng.UniformInt(0, 96);
        const Bitvector dst =
            RandomVector(rng, num_bits + offset, density / 2);

        SetBitvectorForceScalar(true);
        const OpResults scalar = RunOps(a, b, offset, dst);
        SetBitvectorForceScalar(false);
        const OpResults dispatched = RunOps(a, b, offset, dst);

        ASSERT_EQ(scalar.and_bits, dispatched.and_bits) << num_bits;
        ASSERT_EQ(scalar.or_bits, dispatched.or_bits) << num_bits;
        ASSERT_EQ(scalar.andnot_bits, dispatched.andnot_bits) << num_bits;
        ASSERT_EQ(scalar.or_shifted_bits, dispatched.or_shifted_bits)
            << num_bits << " offset=" << offset;
        ASSERT_EQ(scalar.count_a, dispatched.count_a) << num_bits;
        ASSERT_EQ(scalar.and_count, dispatched.and_count) << num_bits;
        ASSERT_EQ(scalar.or_count, dispatched.or_count) << num_bits;
        ASSERT_EQ(scalar.none_a, dispatched.none_a) << num_bits;
        ASSERT_EQ(scalar.and_none, dispatched.and_none) << num_bits;
        ASSERT_EQ(scalar.subset, dispatched.subset) << num_bits;
        ASSERT_EQ(scalar.equal, dispatched.equal) << num_bits;
        ASSERT_EQ(scalar.indices, dispatched.indices) << num_bits;
        ASSERT_EQ(scalar.hash_a, dispatched.hash_a) << num_bits;
        ++pairs;
      }
    }
  }
  EXPECT_GE(pairs, 250);  // 17 lengths × 5 densities × 3 reps
}

TEST_F(BitvectorKernelTest, SubsetAndNoneEdgeCases) {
  for (bool force_scalar : {true, false}) {
    SetBitvectorForceScalar(force_scalar);
    const Bitvector empty(0);
    EXPECT_TRUE(empty.None());
    EXPECT_TRUE(empty.IsSubsetOf(empty));
    EXPECT_TRUE(Bitvector::AndNone(empty, empty));

    Bitvector zeros(300);
    Bitvector ones = Bitvector::AllSet(300);
    EXPECT_TRUE(zeros.None());
    EXPECT_FALSE(ones.None());
    EXPECT_TRUE(zeros.IsSubsetOf(ones));
    EXPECT_FALSE(ones.IsSubsetOf(zeros));
    EXPECT_TRUE(Bitvector::AndNone(zeros, ones));
    EXPECT_FALSE(Bitvector::AndNone(ones, ones));
    EXPECT_EQ(ones.Count(), 300);

    // One bit in the tail word only.
    Bitvector tail(300);
    tail.Set(299);
    EXPECT_FALSE(tail.None());
    EXPECT_TRUE(tail.IsSubsetOf(ones));
    EXPECT_FALSE(Bitvector::AndNone(tail, ones));
    EXPECT_EQ(Bitvector::AndCount(tail, ones), 1);
  }
}

TEST_F(BitvectorKernelTest, ArenaAndHeapBackingsAgree) {
  Rng rng(0xa7e4a);
  Arena arena;
  for (int rep = 0; rep < 50; ++rep) {
    const int64_t num_bits = rng.UniformInt(1, 500);
    const Bitvector heap_a = RandomVector(rng, num_bits, 0.4);
    const Bitvector heap_b = RandomVector(rng, num_bits, 0.4);
    Bitvector arena_a(heap_a, &arena);
    Bitvector arena_b(heap_b, &arena);
    ASSERT_TRUE(arena_a.arena_backed());
    ASSERT_EQ(arena_a, heap_a);

    Bitvector heap_and = Bitvector::And(heap_a, heap_b);
    Bitvector arena_and = Bitvector::And(arena_a, arena_b, &arena);
    ASSERT_TRUE(arena_and.arena_backed());
    ASSERT_FALSE(heap_and.arena_backed());
    ASSERT_EQ(heap_and, arena_and);
    ASSERT_EQ(heap_and.ToString(), arena_and.ToString());

    // Copies always land on the heap; detach re-homes in place.
    Bitvector copied = arena_and;
    ASSERT_FALSE(copied.arena_backed());
    ASSERT_EQ(copied, arena_and);
    arena_and.DetachFromArena();
    ASSERT_FALSE(arena_and.arena_backed());
    ASSERT_EQ(copied, arena_and);
  }
  EXPECT_GT(arena.high_water_bytes(), 0);
}

}  // namespace
}  // namespace colossal
