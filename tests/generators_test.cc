#include "data/generators.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/dataset_stats.h"

namespace colossal {
namespace {

TEST(DiagTest, ShapeMatchesDefinition) {
  TransactionDatabase db = MakeDiag(6);
  EXPECT_EQ(db.num_transactions(), 6);
  EXPECT_EQ(db.num_items(), 6u);
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(db.transaction(t).size(), 5);
    EXPECT_FALSE(db.transaction(t).Contains(static_cast<ItemId>(t)));
  }
}

// In Diag_n the support of any itemset X is exactly n − |X|.
TEST(DiagTest, SupportIsNMinusSize) {
  TransactionDatabase db = MakeDiag(8);
  EXPECT_EQ(db.Support(Itemset({0})), 7);
  EXPECT_EQ(db.Support(Itemset({0, 1})), 6);
  EXPECT_EQ(db.Support(Itemset({0, 3, 5, 7})), 4);
  EXPECT_EQ(db.Support(Itemset({0, 1, 2, 3, 4, 5, 6, 7})), 0);
}

TEST(DiagPlusTest, IntroScenarioShape) {
  LabeledDatabase labeled = MakeDiagPlus(40, 20);
  EXPECT_EQ(labeled.db.num_transactions(), 60);
  EXPECT_EQ(labeled.db.num_items(), 79u);
  ASSERT_EQ(labeled.planted.size(), 1u);
  EXPECT_EQ(labeled.planted[0].size(), 39);  // items 40..78
  EXPECT_EQ(labeled.min_support_count, 20);
  // The colossal pattern has support exactly 20 (the extra rows).
  EXPECT_EQ(labeled.db.Support(labeled.planted[0]), 20);
  // Mid-size diag patterns of size 20 have support 20 as well.
  std::vector<ItemId> half;
  for (ItemId item = 0; item < 20; ++item) half.push_back(item);
  EXPECT_EQ(labeled.db.Support(Itemset::FromUnsorted(half)), 20);
}

TEST(Figure3Test, MatchesPaperTable) {
  TransactionDatabase db = MakePaperFigure3();
  EXPECT_EQ(db.num_transactions(), 400);
  EXPECT_EQ(db.num_items(), 5u);
  // Supports from the paper's Figure 3 discussion.
  EXPECT_EQ(db.Support(Itemset({0, 1, 3})), 200);     // (abe)
  EXPECT_EQ(db.Support(Itemset({0, 1})), 200);        // (ab)
  EXPECT_EQ(db.Support(Itemset({3})), 200);           // (e)
  EXPECT_EQ(db.Support(Itemset({0})), 300);           // (a)
  EXPECT_EQ(db.Support(Itemset({0, 1, 2, 3, 4})), 100);  // (abcef)
  EXPECT_EQ(Figure3ItemName(0), "a");
  EXPECT_EQ(Figure3ItemName(4), "f");
}

TEST(ProgramTraceTest, ShapeMatchesReplaceStandIn) {
  LabeledDatabase labeled = MakeProgramTraceLike(7);
  EXPECT_EQ(labeled.db.num_transactions(), 4395);
  EXPECT_EQ(labeled.db.num_items(), 57u);
  EXPECT_EQ(labeled.min_support_count, 132);  // ceil(0.03 * 4395)
  ASSERT_EQ(labeled.planted.size(), 3u);
  for (const Itemset& path : labeled.planted) {
    EXPECT_EQ(path.size(), 44);
    // Each full path must itself be frequent at σ = 0.03.
    EXPECT_GE(labeled.db.Support(path), labeled.min_support_count);
  }
  // The three paths differ exactly in their 6 path-specific items.
  EXPECT_EQ(Intersection(labeled.planted[0], labeled.planted[1]).size(), 38);
}

TEST(ProgramTraceTest, DeterministicForFixedSeed) {
  LabeledDatabase a = MakeProgramTraceLike(123);
  LabeledDatabase b = MakeProgramTraceLike(123);
  EXPECT_EQ(a.db.TotalItemOccurrences(), b.db.TotalItemOccurrences());
  EXPECT_EQ(a.db.transaction(17), b.db.transaction(17));
  LabeledDatabase c = MakeProgramTraceLike(124);
  EXPECT_NE(a.db.TotalItemOccurrences(), c.db.TotalItemOccurrences());
}

TEST(MicroarrayTest, ShapeMatchesAllStandIn) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  EXPECT_EQ(labeled.db.num_transactions(), 38);
  EXPECT_EQ(labeled.db.num_items(), 1736u);
  EXPECT_EQ(labeled.min_support_count, 30);
  for (int64_t t = 0; t < labeled.db.num_transactions(); ++t) {
    EXPECT_EQ(labeled.db.transaction(t).size(), 866);
  }
}

TEST(MicroarrayTest, PlantedPatternsMatchFigure9Histogram) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  const std::vector<int>& sizes = MicroarrayPlantedSizes();
  ASSERT_EQ(labeled.planted.size(), sizes.size());
  for (size_t k = 0; k < sizes.size(); ++k) {
    EXPECT_EQ(labeled.planted[k].size(), sizes[k]) << "pattern " << k;
    // Every planted pattern has support exactly 31 (38 − 7 missing rows).
    EXPECT_EQ(labeled.db.Support(labeled.planted[k]), 31) << "pattern " << k;
  }
}

TEST(MicroarrayTest, PlantedSupportSetsFormAnAntichain) {
  LabeledDatabase labeled = MakeMicroarrayLike(11);
  for (size_t a = 0; a < labeled.planted.size(); ++a) {
    for (size_t b = 0; b < labeled.planted.size(); ++b) {
      if (a == b) continue;
      const Bitvector sa = labeled.db.SupportSet(labeled.planted[a]);
      const Bitvector sb = labeled.db.SupportSet(labeled.planted[b]);
      EXPECT_FALSE(sa.IsSubsetOf(sb)) << a << " vs " << b;
    }
  }
}

// Mixing private items of two different planted patterns must be
// infrequent at σ = 30, so the planted patterns are exactly the colossal
// closed patterns (the Figure 9 ground truth).
TEST(MicroarrayTest, CrossPatternMixesAreInfrequent) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  for (size_t a = 0; a + 1 < labeled.planted.size(); ++a) {
    const Itemset mix =
        Union(labeled.planted[a], labeled.planted[a + 1]);
    EXPECT_LT(labeled.db.Support(mix), 30) << "mix at " << a;
  }
}

TEST(MicroarrayTest, UniversalItemsPresentEverywhere) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  for (ItemId item = 0; item < 60; ++item) {
    EXPECT_EQ(labeled.db.ItemSupport(item), 38);
  }
}

TEST(MicroarrayTest, ConfusableBlockHasSupportThirty) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  for (ItemId item = kMicroarrayConfusableBase; item < kMicroarrayNoiseBase;
       ++item) {
    EXPECT_EQ(labeled.db.ItemSupport(item), 30);
  }
}

// Pairs of confusable items must be infrequent at the paper threshold —
// the block only explodes once σ drops — and pairwise support sets must
// be distinct so closures do not merge the items.
TEST(MicroarrayTest, ConfusablePairsInfrequentAtPaperThreshold) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  for (ItemId a = kMicroarrayConfusableBase;
       a < kMicroarrayConfusableBase + 20; ++a) {
    for (ItemId b = a + 1; b < kMicroarrayConfusableBase + 20; ++b) {
      EXPECT_LT(labeled.db.Support(Itemset({a, b})), 30);
      EXPECT_FALSE(labeled.db.item_tidset(a) == labeled.db.item_tidset(b));
    }
  }
}

TEST(MicroarrayTest, NoiseStaysBelowFigure10Range) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  int64_t max_noise_support = 0;
  for (ItemId item = kMicroarrayNoiseBase; item < 1736; ++item) {
    max_noise_support = std::max(max_noise_support, labeled.db.ItemSupport(item));
  }
  // Figure 10 sweeps σ down to 21; noise must not join the frequent
  // items there (supports concentrate near 12).
  EXPECT_LT(max_noise_support, 21);
}

TEST(RandomDatabaseTest, RespectsShapeAndDeterminism) {
  RandomDatabaseOptions options;
  options.num_transactions = 50;
  options.num_items = 10;
  options.density = 0.4;
  options.seed = 3;
  TransactionDatabase a = MakeRandomDatabase(options);
  TransactionDatabase b = MakeRandomDatabase(options);
  EXPECT_EQ(a.num_transactions(), 50);
  EXPECT_LE(a.num_items(), 10u);
  EXPECT_EQ(ToFimiString(a), ToFimiString(b));
}

TEST(PlantedDatabaseTest, PlantedPatternsReachRequestedSupport) {
  PlantedDatabaseOptions options;
  options.num_transactions = 80;
  options.num_items = 30;
  options.noise_density = 0.05;
  options.seed = 9;
  options.patterns.push_back({Itemset({1, 2, 3, 4, 5}), 25});
  options.patterns.push_back({Itemset({20, 21, 22}), 40});
  TransactionDatabase db = MakePlantedDatabase(options);
  EXPECT_GE(db.Support(Itemset({1, 2, 3, 4, 5})), 25);
  EXPECT_GE(db.Support(Itemset({20, 21, 22})), 40);
}

TEST(DatasetStatsTest, SummarizesCorrectly) {
  StatusOr<TransactionDatabase> db = TransactionDatabase::FromTransactions({
      {0, 1, 2, 3},
      {0, 1},
  });
  ASSERT_TRUE(db.ok());
  DatasetStats stats = ComputeStats(*db);
  EXPECT_EQ(stats.num_transactions, 2);
  EXPECT_EQ(stats.num_items_used, 4);
  EXPECT_EQ(stats.min_transaction_size, 2);
  EXPECT_EQ(stats.max_transaction_size, 4);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_size, 3.0);
  EXPECT_EQ(stats.max_item_support, 2);
  EXPECT_EQ(stats.CountFrequentItems(*db, 2), 2);
  EXPECT_FALSE(StatsToString(stats).empty());
}

}  // namespace
}  // namespace colossal
