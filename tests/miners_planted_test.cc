// Planted-pattern recovery properties for every complete miner: if a
// pattern is planted with support comfortably above the threshold, the
// complete miners must report it (frequent miners verbatim; closed
// miners its closure, which contains it; maximal miners some superset),
// across a grid of pattern sizes and noise levels.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "mining/apriori.h"
#include "mining/closed_miner.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/maximal_miner.h"
#include "mining/topk_miner.h"

namespace colossal {
namespace {

struct PlantedCase {
  int pattern_size;
  double noise;
  uint64_t seed;
};

class PlantedMinerTest : public ::testing::TestWithParam<PlantedCase> {
 protected:
  void SetUp() override {
    const PlantedCase& config = GetParam();
    PlantedDatabaseOptions options;
    options.num_transactions = 120;
    options.num_items = 24;  // within the brute-force-sized domain
    options.noise_density = config.noise;
    options.seed = config.seed;
    std::vector<ItemId> items;
    for (int i = 0; i < config.pattern_size; ++i) {
      items.push_back(static_cast<ItemId>(10 + i));
    }
    planted_ = Itemset::FromUnsorted(items);
    options.patterns.push_back({planted_, 60});
    db_ = MakePlantedDatabase(options);
    min_support_ = 50;
  }

  TransactionDatabase db_;
  Itemset planted_;
  int64_t min_support_ = 0;
};

TEST_P(PlantedMinerTest, FrequentMinersReportThePlantedPattern) {
  MinerOptions options;
  options.min_support_count = min_support_;
  // Bound the size so the complete enumeration stays small even at high
  // noise; the planted pattern itself must still appear.
  options.max_pattern_size = planted_.size();

  for (auto miner : {MineApriori, MineEclat, MineFpGrowth}) {
    StatusOr<MiningResult> result = miner(db_, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(ContainsPattern(*result, planted_));
  }
}

TEST_P(PlantedMinerTest, ClosedMinerReportsAClosureContainingIt) {
  MinerOptions options;
  options.min_support_count = min_support_;
  StatusOr<MiningResult> result = MineClosed(db_, options);
  ASSERT_TRUE(result.ok());
  bool contained = false;
  for (const FrequentItemset& pattern : result->patterns) {
    if (planted_.IsSubsetOf(pattern.items)) contained = true;
  }
  EXPECT_TRUE(contained);
}

TEST_P(PlantedMinerTest, MaximalMinerReportsASupersetOfIt) {
  MinerOptions options;
  options.min_support_count = min_support_;
  StatusOr<MiningResult> result = MineMaximal(db_, options);
  ASSERT_TRUE(result.ok());
  bool contained = false;
  for (const FrequentItemset& pattern : result->patterns) {
    if (planted_.IsSubsetOf(pattern.items)) contained = true;
  }
  EXPECT_TRUE(contained);
}

TEST_P(PlantedMinerTest, TopKWithMatchingLengthFindsIt) {
  TopKOptions options;
  options.k = 5;
  options.min_pattern_size = planted_.size();
  options.min_support_count = min_support_;
  StatusOr<MiningResult> result = MineTopKClosed(db_, options);
  ASSERT_TRUE(result.ok());
  bool contained = false;
  for (const FrequentItemset& pattern : result->patterns) {
    if (planted_.IsSubsetOf(pattern.items)) contained = true;
  }
  EXPECT_TRUE(contained);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlantedMinerTest,
    ::testing::Values(PlantedCase{4, 0.02, 1}, PlantedCase{4, 0.10, 2},
                      PlantedCase{6, 0.05, 3}, PlantedCase{8, 0.02, 4},
                      PlantedCase{8, 0.10, 5}, PlantedCase{10, 0.05, 6}));

}  // namespace
}  // namespace colossal
