#include "common/bitvector.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"

namespace colossal {
namespace {

TEST(BitvectorTest, ConstructsCleared) {
  Bitvector bits(130);
  EXPECT_EQ(bits.size_bits(), 130);
  EXPECT_EQ(bits.Count(), 0);
  EXPECT_TRUE(bits.None());
}

TEST(BitvectorTest, AllSetCountsExactly) {
  EXPECT_EQ(Bitvector::AllSet(1).Count(), 1);
  EXPECT_EQ(Bitvector::AllSet(64).Count(), 64);
  EXPECT_EQ(Bitvector::AllSet(65).Count(), 65);
  EXPECT_EQ(Bitvector::AllSet(130).Count(), 130);
}

TEST(BitvectorTest, SetTestReset) {
  Bitvector bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3);
}

TEST(BitvectorTest, FromIndicesRoundTripsToIndices) {
  const std::vector<int64_t> indices = {0, 5, 63, 64, 120};
  Bitvector bits = Bitvector::FromIndices(130, indices);
  EXPECT_EQ(bits.ToIndices(), indices);
}

TEST(BitvectorTest, AndOrKernels) {
  Bitvector a = Bitvector::FromIndices(70, {1, 3, 65});
  Bitvector b = Bitvector::FromIndices(70, {3, 65, 69});
  EXPECT_EQ(Bitvector::And(a, b).ToIndices(),
            (std::vector<int64_t>{3, 65}));
  EXPECT_EQ(Bitvector::Or(a, b).ToIndices(),
            (std::vector<int64_t>{1, 3, 65, 69}));
  EXPECT_EQ(Bitvector::AndCount(a, b), 2);
  EXPECT_EQ(Bitvector::OrCount(a, b), 4);
}

TEST(BitvectorTest, InPlaceKernelsMatchOutOfPlace) {
  Bitvector a = Bitvector::FromIndices(70, {1, 3, 65});
  Bitvector b = Bitvector::FromIndices(70, {3, 65, 69});
  Bitvector and_copy = a;
  and_copy.AndWith(b);
  EXPECT_EQ(and_copy, Bitvector::And(a, b));
  Bitvector or_copy = a;
  or_copy.OrWith(b);
  EXPECT_EQ(or_copy, Bitvector::Or(a, b));
  Bitvector andnot_copy = a;
  andnot_copy.AndNotWith(b);
  EXPECT_EQ(andnot_copy.ToIndices(), (std::vector<int64_t>{1}));
}

TEST(BitvectorTest, SubsetChecks) {
  Bitvector small = Bitvector::FromIndices(100, {4, 70});
  Bitvector big = Bitvector::FromIndices(100, {4, 20, 70});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(Bitvector(100).IsSubsetOf(small));
}

TEST(BitvectorTest, NoneEarlyExitAgreesWithCount) {
  Bitvector empty(500);
  EXPECT_TRUE(empty.None());
  // A bit in the first word must short-circuit; one in the last word
  // must still be found.
  Bitvector first(500);
  first.Set(0);
  EXPECT_FALSE(first.None());
  Bitvector last(500);
  last.Set(499);
  EXPECT_FALSE(last.None());
  last.Reset(499);
  EXPECT_TRUE(last.None());
  EXPECT_TRUE(Bitvector().None());
}

TEST(BitvectorTest, AndNoneMatchesAndCountZero) {
  Bitvector a = Bitvector::FromIndices(200, {1, 70, 199});
  Bitvector b = Bitvector::FromIndices(200, {0, 71, 198});
  EXPECT_TRUE(Bitvector::AndNone(a, b));
  EXPECT_EQ(Bitvector::AndCount(a, b), 0);
  b.Set(199);  // overlap in the last word only
  EXPECT_FALSE(Bitvector::AndNone(a, b));
  EXPECT_TRUE(Bitvector::AndNone(Bitvector(200), a));
  EXPECT_TRUE(Bitvector::AndNone(Bitvector(0), Bitvector(0)));
}

TEST(BitvectorTest, IntersectsDetectsSharedBits) {
  Bitvector a = Bitvector::FromIndices(80, {10});
  Bitvector b = Bitvector::FromIndices(80, {11});
  Bitvector c = Bitvector::FromIndices(80, {10, 11});
  EXPECT_FALSE(Bitvector::Intersects(a, b));
  EXPECT_TRUE(Bitvector::Intersects(a, c));
  EXPECT_TRUE(Bitvector::Intersects(b, c));
}

TEST(BitvectorTest, JaccardDistanceBasics) {
  Bitvector a = Bitvector::FromIndices(10, {0, 1, 2});
  Bitvector b = Bitvector::FromIndices(10, {1, 2, 3});
  // |∩| = 2, |∪| = 4.
  EXPECT_DOUBLE_EQ(Bitvector::JaccardDistance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(Bitvector::JaccardDistance(a, a), 0.0);
  Bitvector empty(10);
  EXPECT_DOUBLE_EQ(Bitvector::JaccardDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(Bitvector::JaccardDistance(a, empty), 1.0);
}

TEST(BitvectorTest, EqualityIncludesLength) {
  Bitvector a(64);
  Bitvector b(65);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == Bitvector(64));
}

TEST(BitvectorTest, HashValueMatchesForEqualContent) {
  Bitvector a = Bitvector::FromIndices(100, {1, 50, 99});
  Bitvector b = Bitvector::FromIndices(100, {1, 50, 99});
  EXPECT_EQ(a.HashValue(), b.HashValue());
  b.Reset(50);
  EXPECT_NE(a.HashValue(), b.HashValue());
}

TEST(BitvectorTest, ToStringShowsBitZeroFirst) {
  Bitvector bits = Bitvector::FromIndices(4, {1, 3});
  EXPECT_EQ(bits.ToString(), "0101");
}

TEST(BitvectorTest, OrWithShiftedStitchesAtAnyOffset) {
  // The shard-stitch kernel: for a sweep of destination sizes, shard
  // sizes and offsets (word-aligned and not), the shifted OR must equal
  // the bit-by-bit reference.
  for (int64_t total : {int64_t{70}, int64_t{128}, int64_t{200}}) {
    for (int64_t local_bits : {int64_t{1}, int64_t{63}, int64_t{64},
                               int64_t{65}}) {
      for (int64_t offset : {int64_t{0}, int64_t{1}, int64_t{37},
                             int64_t{64}, int64_t{70}}) {
        if (offset + local_bits > total) continue;
        Bitvector local(local_bits);
        for (int64_t i = 0; i < local_bits; i += 2) local.Set(i);
        local.Set(local_bits - 1);

        Bitvector stitched(total);
        stitched.Set(0);  // pre-existing bits must survive
        stitched.OrWithShifted(local, offset);

        Bitvector expected(total);
        expected.Set(0);
        for (int64_t i = 0; i < local_bits; ++i) {
          if (local.Test(i)) expected.Set(offset + i);
        }
        EXPECT_EQ(stitched, expected)
            << "total=" << total << " local=" << local_bits
            << " offset=" << offset;
      }
    }
  }
}

TEST(BitvectorTest, OrWithShiftedComposesAPartition) {
  // Stitching disjoint per-shard slices reproduces the whole: the exact
  // property the sharded miner relies on.
  Bitvector whole(150);
  for (int64_t i = 0; i < 150; ++i) {
    if ((i * 2654435761u) % 5 < 2) whole.Set(i);
  }
  Bitvector stitched(150);
  const int64_t cuts[] = {0, 40, 64, 110, 150};
  for (int c = 0; c + 1 < 5; ++c) {
    Bitvector slice(cuts[c + 1] - cuts[c]);
    for (int64_t i = cuts[c]; i < cuts[c + 1]; ++i) {
      if (whole.Test(i)) slice.Set(i - cuts[c]);
    }
    stitched.OrWithShifted(slice, cuts[c]);
  }
  EXPECT_EQ(stitched, whole);
}

TEST(BitvectorSerializationTest, RoundTripsEmptyAndZeroLength) {
  for (int64_t num_bits : {int64_t{0}, int64_t{1}, int64_t{100}}) {
    const Bitvector original(num_bits);  // all clear
    std::string data;
    original.AppendTo(&data);
    EXPECT_EQ(static_cast<int64_t>(data.size()),
              Bitvector::SerializedBytes(num_bits));
    size_t pos = 0;
    StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, original);
    EXPECT_EQ(pos, data.size());
  }
}

TEST(BitvectorSerializationTest, RoundTripsWordBoundaries) {
  for (int num_bits : {1, 63, 64, 65, 127, 128, 129}) {
    Bitvector original(num_bits);
    for (int i = 0; i < num_bits; i += 3) original.Set(i);
    original.Set(num_bits - 1);  // exercise the tail bit
    std::string data;
    original.AppendTo(&data);
    size_t pos = 0;
    StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
    ASSERT_TRUE(parsed.ok()) << "num_bits=" << num_bits;
    EXPECT_EQ(*parsed, original) << "num_bits=" << num_bits;
  }
}

TEST(BitvectorSerializationTest, RoundTripsLargeVector) {
  Bitvector original(1 << 16);
  for (int64_t i = 0; i < original.size_bits(); ++i) {
    if ((i * 2654435761u) % 7 < 3) original.Set(i);
  }
  std::string data;
  original.AppendTo(&data);
  size_t pos = 0;
  StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
  EXPECT_EQ(parsed->Count(), original.Count());
}

TEST(BitvectorSerializationTest, ConcatenatedVectorsParseInSequence) {
  const Bitvector first = Bitvector::FromIndices(70, {0, 64, 69});
  const Bitvector second = Bitvector::FromIndices(3, {1});
  std::string data;
  first.AppendTo(&data);
  second.AppendTo(&data);
  size_t pos = 0;
  StatusOr<Bitvector> a = Bitvector::ParseFrom(data, &pos);
  StatusOr<Bitvector> b = Bitvector::ParseFrom(data, &pos);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, first);
  EXPECT_EQ(*b, second);
  EXPECT_EQ(pos, data.size());
}

TEST(BitvectorSerializationTest, RejectsTruncatedInput) {
  Bitvector original = Bitvector::FromIndices(130, {0, 64, 129});
  std::string data;
  original.AppendTo(&data);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{8}, data.size() - 1}) {
    const std::string truncated = data.substr(0, cut);
    size_t pos = 0;
    EXPECT_FALSE(Bitvector::ParseFrom(truncated, &pos).ok())
        << "cut=" << cut;
  }
}

TEST(BitvectorSerializationTest, RejectsHostileLengthWithoutAllocating) {
  // An 8-byte input declaring a near-INT64_MAX bit length must fail with
  // a Status, not die in a multi-exabyte allocation.
  for (uint64_t declared :
       {uint64_t{1} << 62, static_cast<uint64_t>(INT64_MAX) - 1,
        uint64_t{1000000}}) {
    std::string data;
    for (int byte = 0; byte < 8; ++byte) {
      data.push_back(static_cast<char>((declared >> (8 * byte)) & 0xff));
    }
    size_t pos = 0;
    StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
    ASSERT_FALSE(parsed.ok()) << "declared=" << declared;
    EXPECT_NE(parsed.status().message().find("truncated"),
              std::string::npos);
  }
}

TEST(BitvectorSerializationTest, RejectsCorruptPadding) {
  Bitvector original(65);
  original.Set(64);
  std::string data;
  original.AppendTo(&data);
  // Set a bit beyond the declared 65 bits inside the second word.
  data[8 + 8 + 1] = static_cast<char>(data[8 + 8 + 1] | 0x02);
  size_t pos = 0;
  StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("beyond declared length"),
            std::string::npos);
}

// Arena backing must be invisible in the serialized bytes — and the
// parser must keep rejecting dirty padding even when the vector being
// round-tripped was carved from recycled (non-zeroed) arena memory.
TEST(BitvectorSerializationTest, ArenaBackedRoundTripMatchesHeap) {
  Arena arena;
  // Dirty the arena so recycled chunk bytes are all-ones, then rewind:
  // any missed trailing-bit canonicalization would now show up as set
  // padding bits in the arena-backed copy.
  for (int i = 0; i < 64; ++i) {
    Bitvector scribble(1000, &arena, true);
  }
  arena.Reset();

  for (int64_t num_bits : {1, 63, 64, 65, 130, 1000}) {
    Bitvector heap(num_bits);
    for (int64_t bit = 0; bit < num_bits; bit += 3) heap.Set(bit);
    Bitvector arena_backed(heap, &arena);
    ASSERT_TRUE(arena_backed.arena_backed());

    std::string heap_bytes;
    heap.AppendTo(&heap_bytes);
    std::string arena_bytes;
    arena_backed.AppendTo(&arena_bytes);
    EXPECT_EQ(heap_bytes, arena_bytes) << num_bits;

    size_t pos = 0;
    StatusOr<Bitvector> parsed = Bitvector::ParseFrom(arena_bytes, &pos);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_FALSE(parsed->arena_backed());  // parsing always heap-allocates
    EXPECT_EQ(*parsed, heap) << num_bits;
  }
}

TEST(BitvectorSerializationTest, ArenaAllSetHasCleanPadding) {
  Arena arena;
  Bitvector scribble(512, &arena, true);
  arena.Reset();  // the next carve reuses the all-ones bytes

  // 65 bits leaves 63 padding bits in the tail word; all must be clear
  // even though the arena handed back dirty storage.
  Bitvector ones(65, &arena, true);
  EXPECT_EQ(ones.Count(), 65);
  std::string data;
  ones.AppendTo(&data);
  size_t pos = 0;
  StatusOr<Bitvector> parsed = Bitvector::ParseFrom(data, &pos);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Count(), 65);

  // And the parser still rejects set padding if bytes are corrupted in
  // flight: flip a padding bit in the serialized tail word.
  data[8 + 8 + 7] = static_cast<char>(data[8 + 8 + 7] | 0x80);
  pos = 0;
  StatusOr<Bitvector> corrupt = Bitvector::ParseFrom(data, &pos);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("beyond declared length"),
            std::string::npos);
}

// Parameterized sweep: kernels agree with a naive per-bit reference
// across lengths spanning word boundaries.
class BitvectorKernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitvectorKernelSweep, KernelsMatchNaiveReference) {
  const int num_bits = GetParam();
  Bitvector a(num_bits);
  Bitvector b(num_bits);
  int64_t expected_and = 0;
  int64_t expected_or = 0;
  for (int i = 0; i < num_bits; ++i) {
    const bool in_a = (i * 7 + 3) % 5 < 2;
    const bool in_b = (i * 11 + 1) % 3 == 0;
    if (in_a) a.Set(i);
    if (in_b) b.Set(i);
    if (in_a && in_b) ++expected_and;
    if (in_a || in_b) ++expected_or;
  }
  EXPECT_EQ(Bitvector::AndCount(a, b), expected_and);
  EXPECT_EQ(Bitvector::OrCount(a, b), expected_or);
  EXPECT_EQ(Bitvector::And(a, b).Count(), expected_and);
  EXPECT_EQ(Bitvector::Or(a, b).Count(), expected_or);
  EXPECT_EQ(Bitvector::AndNone(a, b), expected_and == 0);
  EXPECT_EQ(a.None(), a.Count() == 0);
  if (expected_or > 0) {
    EXPECT_DOUBLE_EQ(Bitvector::JaccardDistance(a, b),
                     1.0 - static_cast<double>(expected_and) /
                               static_cast<double>(expected_or));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitvectorKernelSweep,
                         ::testing::Values(1, 2, 37, 63, 64, 65, 127, 128,
                                           129, 1000));

}  // namespace
}  // namespace colossal
