#include "mining/result_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(ResultIoTest, RendersFimiOutputConvention) {
  const std::vector<FrequentItemset> patterns = {
      {Itemset({3, 17, 42}), 128},
      {Itemset({5}), 7},
  };
  EXPECT_EQ(PatternsToString(patterns), "3 17 42 (128)\n5 (7)\n");
}

TEST(ResultIoTest, ParsesRoundTrip) {
  const std::vector<FrequentItemset> patterns = {
      {Itemset({0, 2, 9}), 55},
      {Itemset({1}), 400},
  };
  StatusOr<std::vector<FrequentItemset>> parsed =
      ParsePatterns(PatternsToString(patterns));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, patterns);
}

TEST(ResultIoTest, ToleratesBlankLinesAndCarriageReturns) {
  StatusOr<std::vector<FrequentItemset>> parsed =
      ParsePatterns("\n1 2 (10)\r\n\n3 (4)\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].support, 10);
}

TEST(ResultIoTest, NormalizesUnsortedItems) {
  StatusOr<std::vector<FrequentItemset>> parsed = ParsePatterns("9 2 5 (3)\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].items, Itemset({2, 5, 9}));
}

TEST(ResultIoTest, ErrorsCarryLineNumbers) {
  StatusOr<std::vector<FrequentItemset>> missing_support =
      ParsePatterns("1 2 (10)\n3 4\n");
  ASSERT_FALSE(missing_support.ok());
  EXPECT_NE(missing_support.status().message().find("line 2"),
            std::string::npos);

  EXPECT_FALSE(ParsePatterns("a b (3)\n").ok());
  EXPECT_FALSE(ParsePatterns("(3)\n").ok());
  EXPECT_FALSE(ParsePatterns("1 2 (x)\n").ok());
}

TEST(ResultIoTest, EmptyDocumentIsEmptyResult) {
  StatusOr<std::vector<FrequentItemset>> parsed = ParsePatterns("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ResultIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/colossal_result_io.txt";
  const std::vector<FrequentItemset> patterns = {{Itemset({1, 2}), 3}};
  ASSERT_TRUE(WritePatternsFile(patterns, path).ok());
  StatusOr<std::vector<FrequentItemset>> reloaded = ReadPatternsFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, patterns);
  std::remove(path.c_str());
}

TEST(ResultIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadPatternsFile("/no/such/file.txt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace colossal
