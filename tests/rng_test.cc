#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  Rng c(8);
  bool any_difference = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextUint64() != c.NextUint64()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RngTest, MixSeedIsDeterministicAndStreamSensitive) {
  EXPECT_EQ(Rng::MixSeed(7, 0), Rng::MixSeed(7, 0));
  // Distinct streams (and distinct bases) must yield distinct seeds —
  // the fusion engine relies on this for independent per-seed-slot
  // randomness.
  std::set<uint64_t> derived;
  for (uint64_t stream = 0; stream < 256; ++stream) {
    derived.insert(Rng::MixSeed(7, stream));
  }
  EXPECT_EQ(derived.size(), 256u);
  EXPECT_NE(Rng::MixSeed(7, 3), Rng::MixSeed(8, 3));
  // Nested derivation (iteration, then slot) also stays collision-free
  // over a realistic grid.
  std::set<uint64_t> nested;
  for (uint64_t iteration = 0; iteration < 50; ++iteration) {
    for (uint64_t slot = 0; slot < 100; ++slot) {
      nested.insert(Rng::MixSeed(Rng::MixSeed(1, iteration), slot));
    }
  }
  EXPECT_EQ(nested.size(), 5000u);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = rng.UniformInt(-5, 9);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 9);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1);
  }
}

TEST(RngTest, WeightedIndexRoughlyProportional) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0};
  int heavy = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.WeightedIndex(weights) == 1) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / trials, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int64_t> sample = rng.SampleWithoutReplacement(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (int64_t value : sample) {
      EXPECT_GE(value, 0);
      EXPECT_LT(value, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(37);
  const std::vector<int64_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementIsUnbiasedish) {
  // Every element of a population of 10 should be picked ≈ uniformly
  // when sampling 3 of 10 many times.
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    for (int64_t index : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[static_cast<size_t>(index)];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace colossal
