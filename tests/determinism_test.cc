// Determinism regression tests for the parallel fusion engine: with a
// fixed seed, the entire pipeline — initial-pool mining and pattern
// fusion — must produce bit-identical output for every thread count.
// This is the contract that lets `--threads` be a pure performance knob.

#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/bitvector_kernels.h"
#include "core/colossal_miner.h"
#include "core/pattern_fusion.h"
#include "data/generators.h"
#include "mining/apriori.h"
#include "mining/eclat.h"

namespace colossal {
namespace {

// Compares full patterns (itemset, support, support set), not just
// itemsets: a scheduling-dependent support-set would be a real bug even
// if the itemsets happened to agree.
void ExpectSamePatterns(const std::vector<Pattern>& a,
                        const std::vector<Pattern>& b, int threads) {
  ASSERT_EQ(a.size(), b.size()) << "num_threads=" << threads;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "pattern " << i << " differs at num_threads="
                          << threads;
  }
}

TEST(DeterminismTest, MineColossalIdenticalAcrossThreadCounts) {
  LabeledDatabase labeled = MakeDiagPlus(30, 15);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 50;
  options.seed = 7;

  options.num_threads = 1;
  StatusOr<ColossalMiningResult> reference = MineColossal(labeled.db, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
    ASSERT_TRUE(result.ok()) << "num_threads=" << threads;
    EXPECT_EQ(result->initial_pool_size, reference->initial_pool_size);
    EXPECT_EQ(result->iterations, reference->iterations);
    EXPECT_EQ(result->converged, reference->converged);
    ExpectSamePatterns(result->patterns, reference->patterns, threads);
  }
}

TEST(DeterminismTest, FusionEngineIdenticalAcrossThreadCounts) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, 30, 2, PoolMiner::kApriori, 1);
  ASSERT_TRUE(pool.ok());

  PatternFusionOptions options;
  options.min_support_count = 30;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 19;

  options.num_threads = 1;
  StatusOr<PatternFusionResult> reference =
      RunPatternFusion(labeled.db, *pool, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    StatusOr<PatternFusionResult> result =
        RunPatternFusion(labeled.db, *pool, options);
    ASSERT_TRUE(result.ok()) << "num_threads=" << threads;
    EXPECT_EQ(result->converged, reference->converged);
    ASSERT_EQ(result->iterations.size(), reference->iterations.size());
    for (size_t i = 0; i < result->iterations.size(); ++i) {
      EXPECT_EQ(result->iterations[i].pool_size,
                reference->iterations[i].pool_size);
      EXPECT_EQ(result->iterations[i].min_pattern_size,
                reference->iterations[i].min_pattern_size);
      EXPECT_EQ(result->iterations[i].max_pattern_size,
                reference->iterations[i].max_pattern_size);
    }
    ExpectSamePatterns(result->patterns, reference->patterns, threads);
  }
}

TEST(DeterminismTest, AprioriIdenticalAcrossThreadCounts) {
  LabeledDatabase labeled = MakeDiagPlus(24, 12);
  MinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.max_pattern_size = 3;

  options.num_threads = 1;
  StatusOr<MiningResult> reference = MineApriori(labeled.db, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    StatusOr<MiningResult> result = MineApriori(labeled.db, options);
    ASSERT_TRUE(result.ok()) << "num_threads=" << threads;
    EXPECT_EQ(result->patterns, reference->patterns)
        << "num_threads=" << threads;
    EXPECT_EQ(result->stats.nodes_expanded, reference->stats.nodes_expanded);
  }
}

TEST(DeterminismTest, EclatIdenticalAcrossThreadCounts) {
  LabeledDatabase labeled = MakeDiagPlus(24, 12);
  MinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.max_pattern_size = 3;

  options.num_threads = 1;
  StatusOr<MiningResult> reference = MineEclat(labeled.db, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    StatusOr<MiningResult> result = MineEclat(labeled.db, options);
    ASSERT_TRUE(result.ok()) << "num_threads=" << threads;
    EXPECT_EQ(result->patterns, reference->patterns)
        << "num_threads=" << threads;
    EXPECT_EQ(result->stats.nodes_expanded, reference->stats.nodes_expanded);
  }
}

TEST(DeterminismTest, NegativeNumThreadsIsRejectedNotFatal) {
  TransactionDatabase db = MakeDiag(6);
  MinerOptions miner_options;
  miner_options.min_support_count = 1;
  miner_options.num_threads = -1;
  EXPECT_FALSE(MineApriori(db, miner_options).ok());
  EXPECT_FALSE(MineEclat(db, miner_options).ok());

  std::vector<Pattern> pool = {MakePattern(db, Itemset({0}))};
  PatternFusionOptions fusion_options;
  fusion_options.num_threads = -1;
  EXPECT_FALSE(RunPatternFusion(db, pool, fusion_options).ok());
}

TEST(DeterminismTest, BuildInitialPoolIdenticalAcrossThreadCounts) {
  LabeledDatabase labeled = MakeDiagPlus(20, 10);
  StatusOr<std::vector<Pattern>> reference = BuildInitialPool(
      labeled.db, labeled.min_support_count, 2, PoolMiner::kEclat, 1);
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 8}) {
    StatusOr<std::vector<Pattern>> pool = BuildInitialPool(
        labeled.db, labeled.min_support_count, 2, PoolMiner::kEclat, threads);
    ASSERT_TRUE(pool.ok());
    ExpectSamePatterns(*pool, *reference, threads);
  }
}

// Arena backing is a pure allocation strategy: the mine must produce
// bit-identical output with and without a request arena, and nothing in
// the result may still point into the arena (it resets between
// requests).
TEST(DeterminismTest, MineColossalIdenticalWithAndWithoutArena) {
  LabeledDatabase labeled = MakeDiagPlus(30, 15);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 50;
  options.seed = 7;

  StatusOr<ColossalMiningResult> heap = MineColossal(labeled.db, options);
  ASSERT_TRUE(heap.ok());

  Arena arena;
  StatusOr<ColossalMiningResult> arena_backed =
      MineColossal(labeled.db, options, &arena);
  ASSERT_TRUE(arena_backed.ok());
  EXPECT_GT(arena.high_water_bytes(), 0) << "arena was never used";

  EXPECT_EQ(arena_backed->initial_pool_size, heap->initial_pool_size);
  EXPECT_EQ(arena_backed->iterations, heap->iterations);
  EXPECT_EQ(arena_backed->converged, heap->converged);
  ExpectSamePatterns(arena_backed->patterns, heap->patterns, 1);
  for (const Pattern& pattern : arena_backed->patterns) {
    EXPECT_FALSE(pattern.support_set.arena_backed())
        << "result escaped with arena-backed storage";
  }

  // Reusing the arena (as the service does across a request loop)
  // changes neither the answer nor the arena's footprint direction.
  arena.Reset();
  StatusOr<ColossalMiningResult> again =
      MineColossal(labeled.db, options, &arena);
  ASSERT_TRUE(again.ok());
  ExpectSamePatterns(again->patterns, heap->patterns, 1);
}

// Backend dispatch is invisible in the output: the scalar kernels and
// whatever backend the host resolves (AVX2 here when supported) must
// mine bit-identical results. On a scalar-only host the two runs
// coincide; CI's COLOSSAL_FORCE_SCALAR leg plus an AVX2 host cover both
// sides.
TEST(DeterminismTest, MineColossalIdenticalAcrossKernelBackends) {
  LabeledDatabase labeled = MakeMicroarrayLike(5);
  ColossalMinerOptions options;
  options.min_support_count = 30;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 19;

  SetBitvectorForceScalar(true);
  StatusOr<ColossalMiningResult> scalar = MineColossal(labeled.db, options);
  SetBitvectorForceScalar(false);
  ASSERT_TRUE(scalar.ok());

  StatusOr<ColossalMiningResult> dispatched =
      MineColossal(labeled.db, options);
  ASSERT_TRUE(dispatched.ok());

  EXPECT_EQ(dispatched->initial_pool_size, scalar->initial_pool_size);
  EXPECT_EQ(dispatched->iterations, scalar->iterations);
  EXPECT_EQ(dispatched->converged, scalar->converged);
  ExpectSamePatterns(dispatched->patterns, scalar->patterns, 1);
}

}  // namespace
}  // namespace colossal
