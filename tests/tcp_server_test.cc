// Socket-path coverage for net/tcp_server.h and the serve wire protocol
// (service/dispatch.h): round trips, pipelining, partial writes, and the
// hostile inputs the acceptance criteria name — oversized lines, abrupt
// disconnects mid-request, malformed requests, connection-limit
// pressure. Everything must fail with a Status-shaped error response (or
// a clean close), never a crash. CI runs this file under ASan/UBSan and
// TSan.

#include "net/tcp_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/generators.h"
#include "net/socket_io.h"
#include "service/dispatch.h"
#include "service/mining_service.h"

namespace colossal {
namespace {

// An echo handler framed like the real protocol: "echo <line>\n".
ServerReply EchoReply(const std::string& line) {
  ServerReply reply;
  reply.data = "echo " + line + "\n";
  return reply;
}

std::unique_ptr<TcpServer> StartEchoServer(TcpServerOptions options) {
  options.host = "127.0.0.1";
  options.port = 0;
  auto server = std::make_unique<TcpServer>(options, EchoReply);
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

StatusOr<int> Connect(const TcpServer& server) {
  return DialTcp("127.0.0.1", server.port());
}

TEST(TcpServerTest, EchoRoundTripAndPipelining) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  SocketReader reader(*fd);

  ASSERT_TRUE(WriteAll(*fd, "hello\n").ok());
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "echo hello");

  // Three pipelined requests come back in order.
  ASSERT_TRUE(WriteAll(*fd, "a\nb\nc\n").ok());
  for (const char* expected : {"echo a", "echo b", "echo c"}) {
    line = reader.ReadLine();
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(*line, expected);
  }
  ::close(*fd);
  server->Shutdown();
  EXPECT_EQ(server->stats().lines_dispatched, 4);
}

TEST(TcpServerTest, MaxPipelineReleasesRepliesInRequestOrder) {
  // With max_pipeline > 1 both requests run concurrently; the first
  // sleeps so its reply completes last, yet must be delivered first.
  TcpServerOptions options;
  options.max_pipeline = 4;
  options.num_threads = 4;
  options.host = "127.0.0.1";
  options.port = 0;
  TcpServer server(options, [](const std::string& line) {
    if (line == "slow") {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return EchoReply(line);
  });
  ASSERT_TRUE(server.Start().ok());
  StatusOr<int> fd = DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "slow\nfast1\nfast2\n").ok());
  SocketReader reader(*fd);
  for (const char* expected : {"echo slow", "echo fast1", "echo fast2"}) {
    StatusOr<std::string> line = reader.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_EQ(*line, expected);
  }
  ::close(*fd);
  server.Shutdown();
  EXPECT_EQ(server.stats().lines_dispatched, 3);
}

TEST(TcpServerTest, PipelinedFramingErrorStillDeliversEarlierReplies) {
  // An oversized line behind two good pipelined requests: both good
  // replies arrive in order, then the error frame, then the close.
  TcpServerOptions options;
  options.max_pipeline = 4;
  options.num_threads = 2;
  options.max_line_bytes = 64;
  auto server = StartEchoServer(options);
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      WriteAll(*fd, "a\nb\n" + std::string(200, 'x') + "\n").ok());
  SocketReader reader(*fd);
  for (const char* expected : {"echo a", "echo b"}) {
    StatusOr<std::string> line = reader.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_EQ(*line, expected);
  }
  StatusOr<std::string> error_line = reader.ReadLine();
  ASSERT_TRUE(error_line.ok()) << error_line.status().ToString();
  EXPECT_NE(error_line->find("OUT_OF_RANGE"), std::string::npos)
      << *error_line;
  EXPECT_TRUE(reader.AtEof());
  ::close(*fd);
  EXPECT_EQ(server->stats().oversized_lines, 1);
}

TEST(TcpServerTest, PartialWritesAreReassembled) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());
  // Dribble one request byte by byte; line framing must wait for '\n'.
  const std::string request = "slow trickle\n";
  for (const char byte : request) {
    ASSERT_TRUE(WriteAll(*fd, std::string(1, byte)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SocketReader reader(*fd);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "echo slow trickle");
  ::close(*fd);
}

TEST(TcpServerTest, OversizedLineGetsErrorAndClose) {
  TcpServerOptions options;
  options.max_line_bytes = 64;
  auto server = StartEchoServer(options);
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());

  // 8 KiB with no newline: far over the 64-byte line limit.
  ASSERT_TRUE(WriteAll(*fd, std::string(8192, 'x')).ok());
  SocketReader reader(*fd);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line->find("OUT_OF_RANGE"), std::string::npos) << *line;
  EXPECT_TRUE(reader.AtEof());  // connection closed after the error
  ::close(*fd);

  // The server survived and serves new connections.
  StatusOr<int> fd2 = Connect(*server);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(WriteAll(*fd2, "after\n").ok());
  SocketReader reader2(*fd2);
  StatusOr<std::string> line2 = reader2.ReadLine();
  ASSERT_TRUE(line2.ok());
  EXPECT_EQ(*line2, "echo after");
  ::close(*fd2);
  EXPECT_EQ(server->stats().oversized_lines, 1);
}

TEST(TcpServerTest, OversizedButTerminatedLineIsRejectedToo) {
  TcpServerOptions options;
  options.max_line_bytes = 64;
  auto server = StartEchoServer(options);
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());

  // A complete line over the limit that fits inside one read chunk:
  // must be rejected, not handed to the handler.
  ASSERT_TRUE(WriteAll(*fd, std::string(100, 'y') + "\n").ok());
  SocketReader reader(*fd);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_NE(line->find("OUT_OF_RANGE"), std::string::npos) << *line;
  EXPECT_TRUE(reader.AtEof());
  ::close(*fd);
  EXPECT_EQ(server->stats().oversized_lines, 1);
  EXPECT_EQ(server->stats().lines_dispatched, 0);
}

TEST(TcpServerTest, AbruptDisconnectMidRequestIsHarmless) {
  auto server = StartEchoServer({});
  {
    StatusOr<int> fd = Connect(*server);
    ASSERT_TRUE(fd.ok());
    // Half a request, then vanish.
    ASSERT_TRUE(WriteAll(*fd, "incomplete with no newline").ok());
    ::close(*fd);
  }
  {
    // Vanish while the handler is running.
    StatusOr<int> fd = Connect(*server);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteAll(*fd, "request\n").ok());
    ::close(*fd);
  }
  // Give the loop a moment to reap, then prove the server still works.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "alive\n").ok());
  SocketReader reader(*fd);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "echo alive");
  ::close(*fd);
}

TEST(TcpServerTest, ConnectionLimitRejectsWithStatus) {
  TcpServerOptions options;
  options.max_connections = 1;
  auto server = StartEchoServer(options);

  StatusOr<int> first = Connect(*server);
  ASSERT_TRUE(first.ok());
  // Prove the first connection is established server-side before the
  // second lands (accept order is connect order on one loop).
  ASSERT_TRUE(WriteAll(*first, "one\n").ok());
  SocketReader first_reader(*first);
  ASSERT_TRUE(first_reader.ReadLine().ok());

  StatusOr<int> second = Connect(*server);
  ASSERT_TRUE(second.ok());
  SocketReader reader(*second);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_NE(line->find("RESOURCE_EXHAUSTED"), std::string::npos) << *line;
  EXPECT_TRUE(reader.AtEof());
  ::close(*second);
  ::close(*first);

  // Capacity freed: a later connection is accepted again.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  StatusOr<int> third = Connect(*server);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(WriteAll(*third, "three\n").ok());
  SocketReader third_reader(*third);
  StatusOr<std::string> reply = third_reader.ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo three");
  ::close(*third);
  EXPECT_EQ(server->stats().rejected, 1);
}

TEST(TcpServerTest, GracefulShutdownClosesIdleConnections) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = Connect(*server);
  ASSERT_TRUE(fd.ok());
  server->Shutdown();
  // Depending on whether the loop accepted before stopping, the client
  // sees a clean EOF or a reset — either way the read ends, promptly.
  char buffer[8];
  EXPECT_LE(::recv(*fd, buffer, sizeof(buffer), 0), 0);
  ::close(*fd);
  // Idempotent.
  server->Shutdown();
}

TEST(TcpServerTest, StartRejectsBadOptions) {
  TcpServerOptions options;
  options.max_connections = 0;
  TcpServer server(options, EchoReply);
  EXPECT_FALSE(server.Start().ok());

  // A non-local address cannot be bound (no DNS involved, fails fast).
  TcpServerOptions unbindable;
  unbindable.host = "8.8.8.8";
  TcpServer server2(unbindable, EchoReply);
  EXPECT_FALSE(server2.Start().ok());
}

// --- End-to-end: the real serve protocol over the real server ---------------

class ServeProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(::testing::TempDir() + "/tcp_server_test.fimi");
    ASSERT_TRUE(WriteFimiFile(MakeDiagPlus(16, 8).db, *path_).ok());
  }

  void StartServeServer(int64_t max_line_bytes = int64_t{1} << 20) {
    service_ = std::make_unique<MiningService>();
    TcpServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;
    options.max_line_bytes = max_line_bytes;
    MiningService* service = service_.get();
    server_ = std::make_unique<TcpServer>(
        options,
        [service](const std::string& line) {
          return FrameTcpReply(DispatchServeLine(*service, line),
                               /*send_patterns=*/true);
        },
        // The service overload mints a request id for transport faults
        // and lands them in the flight recorder, like production serve.
        [service](const Status& status) {
          return FrameTcpError(*service, status);
        });
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  // Reads one framed response: header line + bytes= payload.
  static void ReadFrame(SocketReader& reader, std::string* header,
                        std::string* payload) {
    StatusOr<std::string> line = reader.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    *header = *line;
    const size_t pos = header->rfind(" bytes=");
    ASSERT_NE(pos, std::string::npos) << *header;
    const size_t count = std::stoull(header->substr(pos + 7));
    StatusOr<std::string> body = reader.ReadExact(count);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    *payload = *body;
  }

  static std::string* path_;
  std::unique_ptr<MiningService> service_;
  std::unique_ptr<TcpServer> server_;
};

std::string* ServeProtocolTest::path_ = nullptr;

TEST_F(ServeProtocolTest, RequestRoundTripMatchesDirectMineAndCaches) {
  StartServeServer();
  StatusOr<int> fd = DialTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);
  const std::string request =
      "--in " + *path_ + " --min-support 8 --k 20 --pool-size 2\n";

  ASSERT_TRUE(WriteAll(*fd, request).ok());
  std::string header;
  std::string payload;
  ReadFrame(reader, &header, &payload);
  EXPECT_EQ(header.rfind("ok source=mined", 0), 0u) << header;

  // The payload is byte-identical to a direct service mine.
  StatusOr<MineRequest> parsed = ParseRequestLine(request);
  ASSERT_TRUE(parsed.ok());
  MiningService reference;
  MiningResponse direct = reference.Mine(*parsed);
  ASSERT_TRUE(direct.status.ok());
  EXPECT_EQ(payload, RenderPatternsPayload(direct));

  // Repeating the request over the same connection hits the cache.
  ASSERT_TRUE(WriteAll(*fd, request).ok());
  std::string cached_header;
  std::string cached_payload;
  ReadFrame(reader, &cached_header, &cached_payload);
  EXPECT_EQ(cached_header.rfind("ok source=cache", 0), 0u) << cached_header;
  EXPECT_EQ(cached_payload, payload);

  // stats and quit.
  ASSERT_TRUE(WriteAll(*fd, "stats\n").ok());
  ReadFrame(reader, &header, &payload);
  EXPECT_EQ(header.rfind("stats cache_hits=1", 0), 0u) << header;
  ASSERT_TRUE(WriteAll(*fd, "quit\n").ok());
  ReadFrame(reader, &header, &payload);
  EXPECT_EQ(header, "ok bye bytes=0");
  EXPECT_TRUE(reader.AtEof());
  ::close(*fd);
}

TEST_F(ServeProtocolTest, MalformedRequestsFailWithStatusNotCrash) {
  StartServeServer(/*max_line_bytes=*/256);
  StatusOr<int> fd = DialTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);

  const struct {
    const char* line;
    const char* expected_code;
  } cases[] = {
      {"definitely not a request", "INVALID_ARGUMENT"},
      {"--bogus-flag 1 --in x --min-support 2", "INVALID_ARGUMENT"},
      {"--in /no/such/file.fimi --min-support 2", "NOT_FOUND"},
      {"--in x --min-support notanumber", "INVALID_ARGUMENT"},
      {"--in x", "INVALID_ARGUMENT"},  // missing support
  };
  for (const auto& test_case : cases) {
    ASSERT_TRUE(WriteAll(*fd, std::string(test_case.line) + "\n").ok());
    std::string header;
    std::string payload;
    ReadFrame(reader, &header, &payload);
    EXPECT_EQ(header.rfind("error code=", 0), 0u) << header;
    EXPECT_NE(header.find(test_case.expected_code), std::string::npos)
        << header << " for input: " << test_case.line;
    EXPECT_FALSE(payload.empty());
  }

  // The connection survived five bad requests; a good one still works.
  ASSERT_TRUE(WriteAll(*fd, "--in " + *path_ +
                                " --min-support 8 --k 20 --pool-size 2\n")
                  .ok());
  std::string header;
  std::string payload;
  ReadFrame(reader, &header, &payload);
  EXPECT_EQ(header.rfind("ok source=", 0), 0u) << header;
  ::close(*fd);

  // An oversized request line is an OUT_OF_RANGE frame, then close.
  StatusOr<int> fd2 = DialTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(WriteAll(*fd2, std::string(1024, 'z')).ok());
  SocketReader reader2(*fd2);
  ReadFrame(reader2, &header, &payload);
  EXPECT_EQ(header.rfind("error code=OUT_OF_RANGE", 0), 0u) << header;
  EXPECT_TRUE(reader2.AtEof());
  ::close(*fd2);
}

TEST_F(ServeProtocolTest, ConcurrentConnectionsShareTheCache) {
  StartServeServer();
  const std::string request =
      "--in " + *path_ + " --min-support 8 --k 20 --pool-size 2\n";

  // Hammer the server from several client threads at once; every
  // response must be a well-formed ok frame with the same payload.
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      StatusOr<int> fd = DialTcp("127.0.0.1", server_->port());
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(WriteAll(*fd, request).ok());
      SocketReader reader(*fd);
      std::string header;
      ReadFrame(reader, &header, &payloads[static_cast<size_t>(i)]);
      EXPECT_EQ(header.rfind("ok source=", 0), 0u) << header;
      ::close(*fd);
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(payloads[static_cast<size_t>(i)], payloads[0]) << i;
  }
  // One mine; everything else was cache or in-flight coalescing.
  EXPECT_EQ(service_->cache_stats().misses, 1);
}

TEST_F(ServeProtocolTest, ShutdownCommandStopsTheServer) {
  StartServeServer();
  StatusOr<int> fd = DialTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "shutdown\n").ok());
  SocketReader reader(*fd);
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "ok bye bytes=0");
  ::close(*fd);
  server_->Wait();  // returns because the dispatched reply stopped it
}

}  // namespace
}  // namespace colossal
