#include "tools/args.h"

#include <vector>

#include <gtest/gtest.h>

namespace colossal {
namespace {

StatusOr<Args> ParseVector(const std::vector<const char*>& argv) {
  return Args::Parse(static_cast<int>(argv.size()), argv.data(), 0);
}

TEST(ArgsTest, ParsesFlagValuePairs) {
  StatusOr<Args> args =
      ParseVector({"--dataset", "diag", "--n", "40", "--tau", "0.5"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->Has("dataset"));
  EXPECT_EQ(args->GetString("dataset"), "diag");
  EXPECT_EQ(*args->GetInt("n", 0), 40);
  EXPECT_DOUBLE_EQ(*args->GetDouble("tau", 0.0), 0.5);
}

TEST(ArgsTest, FallbacksApplyWhenAbsent) {
  StatusOr<Args> args = ParseVector({});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->Has("k"));
  EXPECT_EQ(args->GetString("algo", "pf"), "pf");
  EXPECT_EQ(*args->GetInt("k", 100), 100);
  EXPECT_DOUBLE_EQ(*args->GetDouble("tau", 0.25), 0.25);
}

TEST(ArgsTest, RejectsBareValue) {
  StatusOr<Args> args = ParseVector({"diag"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("expected --flag"),
            std::string::npos);
}

TEST(ArgsTest, RejectsDanglingFlag) {
  StatusOr<Args> args = ParseVector({"--out"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("needs a value"), std::string::npos);
}

TEST(ArgsTest, RejectsEmptyFlagName) {
  EXPECT_FALSE(ParseVector({"--", "x"}).ok());
}

TEST(ArgsTest, NumericParsingErrors) {
  StatusOr<Args> args = ParseVector({"--n", "fortytwo", "--tau", "0.5x"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetInt("n", 0).ok());
  EXPECT_FALSE(args->GetDouble("tau", 0.0).ok());
}

TEST(ArgsTest, NegativeNumbersParse) {
  StatusOr<Args> args = ParseVector({"--offset", "-7", "--x", "-0.25"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(*args->GetInt("offset", 0), -7);
  EXPECT_DOUBLE_EQ(*args->GetDouble("x", 0.0), -0.25);
}

TEST(ArgsTest, CheckKnownCatchesTypos) {
  StatusOr<Args> args = ParseVector({"--dataseet", "diag"});
  ASSERT_TRUE(args.ok());
  Status status = args->CheckKnown({"dataset", "out"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--dataseet"), std::string::npos);
  EXPECT_TRUE(args->CheckKnown({"dataseet"}).ok());
}

TEST(ArgsTest, LaterValueWins) {
  StatusOr<Args> args = ParseVector({"--k", "10", "--k", "20"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(*args->GetInt("k", 0), 20);
}

}  // namespace
}  // namespace colossal
