#include "common/args.h"

#include <vector>

#include <gtest/gtest.h>

namespace colossal {
namespace {

StatusOr<Args> ParseVector(const std::vector<const char*>& argv) {
  return Args::Parse(static_cast<int>(argv.size()), argv.data(), 0);
}

TEST(ArgsTest, ParsesFlagValuePairs) {
  StatusOr<Args> args =
      ParseVector({"--dataset", "diag", "--n", "40", "--tau", "0.5"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->Has("dataset"));
  EXPECT_EQ(args->GetString("dataset"), "diag");
  EXPECT_EQ(*args->GetInt("n", 0), 40);
  EXPECT_DOUBLE_EQ(*args->GetDouble("tau", 0.0), 0.5);
}

TEST(ArgsTest, FallbacksApplyWhenAbsent) {
  StatusOr<Args> args = ParseVector({});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->Has("k"));
  EXPECT_EQ(args->GetString("algo", "pf"), "pf");
  EXPECT_EQ(*args->GetInt("k", 100), 100);
  EXPECT_DOUBLE_EQ(*args->GetDouble("tau", 0.25), 0.25);
}

TEST(ArgsTest, RejectsBareValue) {
  StatusOr<Args> args = ParseVector({"diag"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("expected --flag"),
            std::string::npos);
}

TEST(ArgsTest, RejectsDanglingFlag) {
  StatusOr<Args> args = ParseVector({"--out"});
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("needs a value"), std::string::npos);
}

TEST(ArgsTest, RejectsEmptyFlagName) {
  EXPECT_FALSE(ParseVector({"--", "x"}).ok());
}

TEST(ArgsTest, NumericParsingErrors) {
  StatusOr<Args> args = ParseVector({"--n", "fortytwo", "--tau", "0.5x"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetInt("n", 0).ok());
  EXPECT_FALSE(args->GetDouble("tau", 0.0).ok());
}

TEST(ArgsTest, NegativeNumbersParse) {
  StatusOr<Args> args = ParseVector({"--offset", "-7", "--x", "-0.25"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(*args->GetInt("offset", 0), -7);
  EXPECT_DOUBLE_EQ(*args->GetDouble("x", 0.0), -0.25);
}

TEST(ArgsTest, CheckKnownCatchesTypos) {
  StatusOr<Args> args = ParseVector({"--dataseet", "diag"});
  ASSERT_TRUE(args.ok());
  Status status = args->CheckKnown({"dataset", "out"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--dataseet"), std::string::npos);
  EXPECT_TRUE(args->CheckKnown({"dataseet"}).ok());
}

TEST(ArgsTest, HelpIsABareFlag) {
  StatusOr<Args> args = ParseVector({"--help"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->HelpRequested());

  // --help consumes no value, so flags after it still parse.
  args = ParseVector({"--help", "--k", "5"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->HelpRequested());
  EXPECT_EQ(*args->GetInt("k", 0), 5);

  args = ParseVector({"-h"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->HelpRequested());

  EXPECT_FALSE(ParseVector({"--n", "3"})->HelpRequested());
}

TEST(ArgsTest, DeclaredBooleanFlagsTakeNoValue) {
  const std::vector<const char*> argv = {"--csv", "--out", "x"};
  StatusOr<Args> args =
      Args::Parse(static_cast<int>(argv.size()), argv.data(), 0, {"csv"});
  ASSERT_TRUE(args.ok()) << args.status().ToString();
  EXPECT_TRUE(args->Has("csv"));
  EXPECT_EQ(args->GetString("out"), "x");
  // Without the declaration, --csv still wants a value.
  EXPECT_TRUE(ParseVector({"--csv"}).status().message().find(
                  "needs a value") != std::string::npos);
}

TEST(ArgsTest, HelpIsAlwaysKnown) {
  StatusOr<Args> args = ParseVector({"--help", "--n", "3"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->CheckKnown({"n"}).ok());
}

TEST(ArgsTest, UnknownFlagErrorListsKnownFlags) {
  StatusOr<Args> args = ParseVector({"--treads", "4"});
  ASSERT_TRUE(args.ok());
  Status status = args->CheckKnown({"threads", "tau", "k"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--treads"), std::string::npos);
  EXPECT_NE(status.message().find("--threads"), std::string::npos);
  EXPECT_NE(status.message().find("--tau"), std::string::npos);
  EXPECT_NE(status.message().find("--k"), std::string::npos);
}

TEST(ArgsTest, ParseLineTokenizesWhitespace) {
  StatusOr<Args> args =
      Args::ParseLine("  --in  data.fimi\t--min-support 20 ");
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("in"), "data.fimi");
  EXPECT_EQ(*args->GetInt("min-support", 0), 20);
  EXPECT_TRUE(Args::ParseLine("")->CheckKnown({}).ok());
  EXPECT_FALSE(Args::ParseLine("--dangling").ok());
}

TEST(ArgsTest, LaterValueWins) {
  StatusOr<Args> args = ParseVector({"--k", "10", "--k", "20"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(*args->GetInt("k", 0), 20);
}

}  // namespace
}  // namespace colossal
