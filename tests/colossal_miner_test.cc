#include "core/colossal_miner.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace colossal {
namespace {

bool ResultContains(const ColossalMiningResult& result, const Itemset& items) {
  for (const Pattern& pattern : result.patterns) {
    if (pattern.items == items) return true;
  }
  return false;
}

TEST(ColossalMinerTest, ValidatesSigma) {
  TransactionDatabase db = MakePaperFigure3();
  ColossalMinerOptions options;
  options.sigma = 1.5;
  EXPECT_FALSE(MineColossal(db, options).ok());
}

TEST(ColossalMinerTest, SigmaTakesPrecedenceOverAbsoluteCount) {
  TransactionDatabase db = MakePaperFigure3();  // 400 transactions
  ColossalMinerOptions options;
  options.sigma = 0.5;              // → 200
  options.min_support_count = 1;    // ignored
  options.initial_pool_max_size = 1;
  options.k = 10;
  StatusOr<ColossalMiningResult> result = MineColossal(db, options);
  ASSERT_TRUE(result.ok());
  for (const Pattern& pattern : result->patterns) {
    EXPECT_GE(pattern.support, 200);
  }
}

TEST(ColossalMinerTest, TinySigmaClampsToSupportOne) {
  TransactionDatabase db = MakePaperFigure3();
  ColossalMinerOptions options;
  options.sigma = 0.0;
  options.initial_pool_max_size = 1;
  options.k = 50;
  EXPECT_TRUE(MineColossal(db, options).ok());
}

TEST(ColossalMinerTest, Figure3EndToEnd) {
  TransactionDatabase db = MakePaperFigure3();
  ColossalMinerOptions options;
  options.min_support_count = 100;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 5;
  options.seed = 3;
  StatusOr<ColossalMiningResult> result = MineColossal(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->initial_pool_size, 15);
  EXPECT_TRUE(ResultContains(*result, Itemset({0, 1, 2, 3, 4})));
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iteration_stats.size(),
            static_cast<size_t>(result->iterations));
}

TEST(ColossalMinerTest, DiagPlusFindsTheColossalPattern) {
  LabeledDatabase labeled = MakeDiagPlus(40, 20);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 100;
  options.seed = 7;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->initial_pool_size, 1600);
  EXPECT_TRUE(ResultContains(*result, labeled.planted[0]));
  EXPECT_EQ(result->patterns[0].size(), 39);
}

// The paper's headline microarray claim: Pattern-Fusion "is able to get
// all the largest colossal patterns with size greater than 85". Verify
// on the ALL stand-in: the five planted patterns larger than 85 must all
// be recovered.
TEST(ColossalMinerTest, MicroarrayRecoversAllPatternsAbove85) {
  LabeledDatabase labeled = MakeMicroarrayLike(42);
  ColossalMinerOptions options;
  options.min_support_count = 30;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 100;
  options.seed = 1;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  ASSERT_TRUE(result.ok());
  int recovered_large = 0;
  int planted_large = 0;
  for (const Itemset& planted : labeled.planted) {
    if (planted.size() <= 85) continue;
    ++planted_large;
    if (ResultContains(*result, planted)) ++recovered_large;
  }
  EXPECT_EQ(planted_large, 5);  // 110, 107, 102, 91, 86
  EXPECT_EQ(recovered_large, 5);
  // And the overwhelming majority of all 22 planted patterns.
  int recovered_total = 0;
  for (const Itemset& planted : labeled.planted) {
    if (ResultContains(*result, planted)) ++recovered_total;
  }
  EXPECT_GE(recovered_total, 18);
}

// The paper's Replace claim: "with different settings of K and τ,
// Pattern-Fusion is always able to find all these three colossal
// patterns" (the size-44 ones).
class TraceSettingsTest
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(TraceSettingsTest, FindsAllThreeSize44Paths) {
  const auto [k, tau] = GetParam();
  LabeledDatabase labeled = MakeProgramTraceLike(42);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 3;
  options.tau = tau;
  options.k = k;
  options.seed = 5;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  ASSERT_TRUE(result.ok());
  for (const Itemset& path : labeled.planted) {
    EXPECT_TRUE(ResultContains(*result, path)) << "k=" << k << " tau=" << tau;
  }
  EXPECT_EQ(result->patterns[0].size(), 44);
}

INSTANTIATE_TEST_SUITE_P(
    KTauGrid, TraceSettingsTest,
    ::testing::Values(std::make_pair(50, 0.1), std::make_pair(100, 0.25),
                      std::make_pair(100, 0.5)));

TEST(ColossalMinerTest, PoolMinerChoiceGivesIdenticalResults) {
  LabeledDatabase labeled = MakeDiagPlus(20, 10);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.k = 30;
  options.seed = 9;
  options.pool_miner = PoolMiner::kApriori;
  StatusOr<ColossalMiningResult> apriori = MineColossal(labeled.db, options);
  options.pool_miner = PoolMiner::kEclat;
  StatusOr<ColossalMiningResult> eclat = MineColossal(labeled.db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(eclat.ok());
  // The pools contain identical pattern SETS (Apriori enumerates
  // breadth-first, Eclat depth-first, so the order — and therefore the
  // seed draws — may differ, but the contract must hold either way).
  EXPECT_EQ(apriori->initial_pool_size, eclat->initial_pool_size);
  for (const StatusOr<ColossalMiningResult>* result : {&apriori, &eclat}) {
    bool found = false;
    for (const Pattern& pattern : (*result)->patterns) {
      if (pattern.items == labeled.planted[0]) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(ColossalMinerTest, ReportsIterationTrajectory) {
  LabeledDatabase labeled = MakeDiagPlus(20, 10);
  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 1;
  options.k = 5;
  options.seed = 2;
  StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->iterations, 1);
  for (const FusionIterationStats& stats : result->iteration_stats) {
    EXPECT_GE(stats.pool_size, 1);
    EXPECT_LE(stats.min_pattern_size, stats.max_pattern_size);
  }
}

}  // namespace
}  // namespace colossal
