// Socket-path coverage for net/http_server.h: framing units
// (ParseHttpRequest / SerializeHttpResponse), keep-alive round trips,
// ordered pipelining, and a table of hostile inputs — truncated request
// lines, oversized headers, bad Content-Length, premature disconnects
// mid-body, pipelined mixes of good and bad requests. Every fault must
// answer as a well-formed HTTP error response before the close, never a
// crash or a hang. CI runs this file under ASan/UBSan and TSan.

#include "net/http_server.h"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket_io.h"

namespace colossal {
namespace {

// --- Units: request parsing ------------------------------------------------

TEST(HttpParseTest, ParsesRequestLineHeadersAndBody) {
  StatusOr<HttpRequest> request = ParseHttpRequest(
      "POST /mine HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
      "X-Mixed-Case: Kept As-Is\r\n\r\nhello");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/mine");
  EXPECT_EQ(request->version, "HTTP/1.1");
  EXPECT_EQ(request->body, "hello");
  EXPECT_TRUE(request->keep_alive);
  // Header names lowercase at parse time; values keep their bytes.
  const std::string* value = request->FindHeader("x-mixed-case");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "Kept As-Is");
  EXPECT_EQ(request->FindHeader("no-such-header"), nullptr);
}

TEST(HttpParseTest, BareLfLineEndingsAreAccepted) {
  StatusOr<HttpRequest> request =
      ParseHttpRequest("GET /metrics HTTP/1.1\nHost: x\n\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->target, "/metrics");
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpParseTest, KeepAliveDefaultsByVersion) {
  // 1.1: keep-alive unless Connection: close.
  EXPECT_TRUE(ParseHttpRequest("GET / HTTP/1.1\r\n\r\n")->keep_alive);
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
          ->keep_alive);
  // 1.0: close unless Connection: keep-alive (any case).
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.0\r\n\r\n")->keep_alive);
  EXPECT_TRUE(
      ParseHttpRequest("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
          ->keep_alive);
}

TEST(HttpParseTest, MalformedRequestsFailWithLeadingStatusCode) {
  const struct {
    const char* name;
    const char* raw;
    const char* want_prefix;  // fault messages lead with the HTTP code
  } cases[] = {
      {"no blank line", "GET / HTTP/1.1\r\n", "400"},
      {"one-token request line", "GETONLY\r\n\r\n", "400"},
      {"two-token request line", "GET /\r\n\r\n", "400"},
      {"four tokens", "GET / HTTP/1.1 extra\r\n\r\n", "400"},
      {"not an http version", "GET / FTP/1.1\r\n\r\n", "400"},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", "400"},
      {"whitespace before colon",
       "GET / HTTP/1.1\r\nContent-Length : 5\r\n\r\n", "400"},
      {"non-numeric content length",
       "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", "400"},
      {"negative content length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", "400"},
      {"conflicting content lengths",
       "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab",
       "400"},
      {"chunked transfer coding",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "501"},
      {"body shorter than declared",
       "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", "400"},
  };
  for (const auto& test_case : cases) {
    StatusOr<HttpRequest> request = ParseHttpRequest(test_case.raw);
    ASSERT_FALSE(request.ok()) << test_case.name;
    EXPECT_EQ(request.status().message().rfind(test_case.want_prefix, 0), 0u)
        << test_case.name << ": " << request.status().ToString();
  }
}

// --- Units: response serialization -----------------------------------------

TEST(HttpSerializeTest, AlwaysEmitsContentLengthAndConnection) {
  HttpResponse response;
  response.status = 200;
  response.body = "hello\n";
  response.headers.emplace_back("Content-Type", "text/plain");
  const std::string wire =
      SerializeHttpResponse(response, /*keep_alive=*/true);
  EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << wire;
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 6), "hello\n");
  // No Date header: responses are deterministic by design.
  EXPECT_EQ(wire.find("Date:"), std::string::npos);
}

TEST(HttpSerializeTest, HeadOmitsBodyButKeepsContentLength) {
  HttpResponse response;
  response.body = "0123456789";
  const std::string wire = SerializeHttpResponse(
      response, /*keep_alive=*/false, /*include_body=*/false);
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");  // head only
}

// --- E2E over real sockets -------------------------------------------------

// Echo handler: body and target round-trip, /slow sleeps first so
// pipelining order is observable.
HttpResponse EchoHandler(const HttpRequest& request) {
  if (request.target == "/slow") {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  HttpResponse response;
  response.body = request.method + " " + request.target + " body=[" +
                  request.body + "]";
  return response;
}

std::unique_ptr<HttpServer> StartEchoServer(HttpServerOptions options) {
  options.host = "127.0.0.1";
  options.port = 0;
  auto server = std::make_unique<HttpServer>(options, EchoHandler);
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

struct ClientResponse {
  int status = 0;
  std::string status_line;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

// Reads one full response; fails the test on malformed framing.
void ReadResponse(SocketReader& reader, ClientResponse* out) {
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  if (!line->empty() && line->back() == '\r') line->pop_back();
  out->status_line = *line;
  ASSERT_EQ(line->rfind("HTTP/1.1 ", 0), 0u) << *line;
  out->status = std::stoi(line->substr(9));
  size_t content_length = 0;
  while (true) {
    line = reader.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    if (!line->empty() && line->back() == '\r') line->pop_back();
    if (line->empty()) break;
    const size_t colon = line->find(':');
    ASSERT_NE(colon, std::string::npos) << *line;
    std::string name = line->substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t begin = colon + 1;
    while (begin < line->size() && (*line)[begin] == ' ') ++begin;
    out->headers[name] = line->substr(begin);
    if (name == "content-length") {
      content_length = std::stoull(out->headers[name]);
    }
  }
  if (content_length > 0) {
    StatusOr<std::string> body = reader.ReadExact(content_length);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    out->body = *body;
  }
}

TEST(HttpServerTest, KeepAliveRoundTrips) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  SocketReader reader(*fd);

  // Three sequential requests on one connection.
  for (const char* target : {"/a", "/b", "/c"}) {
    const std::string request = std::string("POST ") + target +
                                " HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
    ASSERT_TRUE(WriteAll(*fd, request).ok());
    ClientResponse response;
    ReadResponse(reader, &response);
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.headers["connection"], "keep-alive");
    EXPECT_EQ(response.body, std::string("POST ") + target + " body=[hi]");
  }
  ::close(*fd);
  server->Shutdown();
  EXPECT_EQ(server->stats().lines_dispatched, 3);
}

TEST(HttpServerTest, ConnectionCloseIsHonored) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);
  ASSERT_TRUE(
      WriteAll(*fd, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").ok());
  ClientResponse response;
  ReadResponse(reader, &response);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["connection"], "close");
  EXPECT_TRUE(reader.AtEof());
  ::close(*fd);
}

TEST(HttpServerTest, HeadGetsHeadersWithoutBody) {
  auto server = StartEchoServer({});
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);
  ASSERT_TRUE(WriteAll(*fd, "HEAD /h HTTP/1.1\r\n\r\n"
                            "GET /after HTTP/1.1\r\n\r\n")
                  .ok());
  // HEAD: Content-Length reflects the GET body, but no body bytes
  // follow — proven by the next pipelined response parsing cleanly.
  StatusOr<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->rfind("HTTP/1.1 200", 0), 0u) << *line;
  size_t declared = 0;
  while (true) {
    line = reader.ReadLine();
    ASSERT_TRUE(line.ok());
    if (!line->empty() && line->back() == '\r') line->pop_back();
    if (line->empty()) break;
    if (line->rfind("Content-Length: ", 0) == 0) {
      declared = std::stoull(line->substr(16));
    }
  }
  EXPECT_GT(declared, 0u);
  ClientResponse after;
  ReadResponse(reader, &after);
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, "GET /after body=[]");
  ::close(*fd);
}

TEST(HttpServerTest, PipelinedRepliesComeBackInRequestOrder) {
  HttpServerOptions options;
  options.num_threads = 4;  // both handlers run concurrently
  options.max_pipeline = 8;
  auto server = StartEchoServer(options);
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);

  // /slow finishes after /fast, but must be answered first.
  ASSERT_TRUE(WriteAll(*fd, "GET /slow HTTP/1.1\r\n\r\n"
                            "GET /fast HTTP/1.1\r\n\r\n")
                  .ok());
  ClientResponse first;
  ClientResponse second;
  ReadResponse(reader, &first);
  ReadResponse(reader, &second);
  EXPECT_EQ(first.body, "GET /slow body=[]");
  EXPECT_EQ(second.body, "GET /fast body=[]");
  ::close(*fd);
}

TEST(HttpServerTest, HostileInputsAnswerWellFormedErrorsThenClose) {
  HttpServerOptions options;
  options.max_request_line_bytes = 128;
  options.max_header_bytes = 256;
  options.max_body_bytes = 512;
  const struct {
    const char* name;
    std::string raw;
    int want_status;
  } cases[] = {
      // Sized over the 128-byte line limit but under the 256-byte head
      // limit, so the request-line check is the one that fires.
      {"oversized request line, no newline yet",
       "GET /" + std::string(200, 'a'), 414},
      {"oversized terminated request line",
       "GET /" + std::string(150, 'a') + " HTTP/1.1\r\n\r\n", 414},
      {"oversized header block",
       "GET / HTTP/1.1\r\nX-Pad: " + std::string(400, 'b') + "\r\n\r\n", 431},
      {"unterminated header flood", std::string("GET / HTTP/1.1\r\n") +
                                        "X-Pad: " + std::string(400, 'c'),
       431},
      {"declared body over the limit",
       "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n", 413},
      {"non-numeric content length",
       "POST / HTTP/1.1\r\nContent-Length: 12px\r\n\r\n", 400},
      {"content length overflow ruse",
       "POST / HTTP/1.1\r\nContent-Length: 9999999999999999999\r\n\r\n", 400},
      {"conflicting content lengths",
       "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx",
       400},
      {"smuggling-shaped header",
       "POST / HTTP/1.1\r\nContent-Length : 5\r\n\r\n", 400},
      {"chunked transfer coding",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 501},
      {"garbage request line", "\x01\x02\x03 garbage\r\n\r\n", 400},
  };
  for (const auto& test_case : cases) {
    auto server = StartEchoServer(options);
    StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd.ok()) << test_case.name;
    ASSERT_TRUE(WriteAll(*fd, test_case.raw).ok()) << test_case.name;
    SocketReader reader(*fd);
    ClientResponse response;
    ReadResponse(reader, &response);
    EXPECT_EQ(response.status, test_case.want_status)
        << test_case.name << ": " << response.status_line;
    EXPECT_EQ(response.headers["connection"], "close") << test_case.name;
    EXPECT_FALSE(response.body.empty()) << test_case.name;
    EXPECT_TRUE(reader.AtEof()) << test_case.name;
    ::close(*fd);

    // The server survived and serves a fresh connection.
    StatusOr<int> fd2 = DialTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd2.ok()) << test_case.name;
    ASSERT_TRUE(WriteAll(*fd2, "GET /ok HTTP/1.1\r\n\r\n").ok());
    SocketReader reader2(*fd2);
    ClientResponse alive;
    ReadResponse(reader2, &alive);
    EXPECT_EQ(alive.status, 200) << test_case.name;
    ::close(*fd2);
  }
}

TEST(HttpServerTest, PrematureDisconnectsAreHarmless) {
  auto server = StartEchoServer({});
  {
    // Vanish mid-request-line.
    StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteAll(*fd, "GET /trunca").ok());
    ::close(*fd);
  }
  {
    // Vanish mid-body: head promises 100 bytes, 3 arrive.
    StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        WriteAll(*fd, "POST /m HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
            .ok());
    ::close(*fd);
  }
  {
    // Vanish while the handler runs.
    StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteAll(*fd, "GET /slow HTTP/1.1\r\n\r\n").ok());
    ::close(*fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "GET /alive HTTP/1.1\r\n\r\n").ok());
  SocketReader reader(*fd);
  ClientResponse response;
  ReadResponse(reader, &response);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "GET /alive body=[]");
  ::close(*fd);
}

TEST(HttpServerTest, PipelinedMixKeepsEarlierRepliesAndClosesAfterError) {
  HttpServerOptions options;
  options.num_threads = 2;
  options.max_pipeline = 8;
  auto server = StartEchoServer(options);
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  SocketReader reader(*fd);

  // good (slow), good, malformed, good-after-error: the two good
  // replies arrive in order, then the 400, then the close — the
  // request after the error is never answered.
  ASSERT_TRUE(WriteAll(*fd, "GET /slow HTTP/1.1\r\n\r\n"
                            "GET /ok HTTP/1.1\r\n\r\n"
                            "JUNK\r\n\r\n"
                            "GET /never HTTP/1.1\r\n\r\n")
                  .ok());
  ClientResponse slow;
  ClientResponse ok;
  ClientResponse error;
  ReadResponse(reader, &slow);
  ReadResponse(reader, &ok);
  ReadResponse(reader, &error);
  EXPECT_EQ(slow.status, 200);
  EXPECT_EQ(slow.body, "GET /slow body=[]");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "GET /ok body=[]");
  EXPECT_EQ(error.status, 400) << error.status_line;
  EXPECT_EQ(error.headers["connection"], "close");
  EXPECT_TRUE(reader.AtEof());
  ::close(*fd);
  server->Shutdown();
  // Only the three answered requests were dispatched or faulted.
  EXPECT_EQ(server->stats().lines_dispatched, 2);
  EXPECT_EQ(server->stats().oversized_lines, 1);
}

TEST(HttpServerTest, ConnectionLimitAnswers503WithRetryAfter) {
  HttpServerOptions options;
  options.max_connections = 1;
  auto server = StartEchoServer(options);

  StatusOr<int> first = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(first.ok());
  // Prove the first connection is established server-side first.
  ASSERT_TRUE(WriteAll(*first, "GET /one HTTP/1.1\r\n\r\n").ok());
  SocketReader first_reader(*first);
  ClientResponse one;
  ReadResponse(first_reader, &one);
  ASSERT_EQ(one.status, 200);

  StatusOr<int> second = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(second.ok());
  SocketReader reader(*second);
  ClientResponse rejected;
  ReadResponse(reader, &rejected);
  EXPECT_EQ(rejected.status, 503) << rejected.status_line;
  EXPECT_EQ(rejected.headers["retry-after"], "1");
  EXPECT_TRUE(reader.AtEof());
  ::close(*second);
  ::close(*first);
}

TEST(HttpServerTest, ShutdownServerResponseStopsTheFrontEnd) {
  HttpServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  auto server = std::make_unique<HttpServer>(
      options, [](const HttpRequest&) {
        HttpResponse response;
        response.body = "bye\n";
        response.shutdown_server = true;
        return response;
      });
  ASSERT_TRUE(server->Start().ok());
  StatusOr<int> fd = DialTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "POST /mine HTTP/1.1\r\n"
                            "Content-Length: 8\r\n\r\nshutdown")
                  .ok());
  SocketReader reader(*fd);
  ClientResponse response;
  ReadResponse(reader, &response);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["connection"], "close");
  ::close(*fd);
  server->Wait();  // returns because the reply stopped it
}

}  // namespace
}  // namespace colossal
