#include "seqext/sequence_fusion.h"

#include <gtest/gtest.h>

#include "seqext/sequence_generators.h"
#include "seqext/sequence_miner.h"

namespace colossal {
namespace {

std::vector<SequencePattern> PoolOrDie(const SequenceDatabase& db,
                                       int64_t min_support, int max_length) {
  SequenceMinerOptions options;
  options.min_support_count = min_support;
  options.max_pattern_length = max_length;
  StatusOr<SequenceMiningResult> result = MineFrequentSequences(db, options);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result->budget_exceeded);
  return result->patterns;
}

TEST(SequenceFusionTest, ValidatesOptions) {
  StatusOr<SequenceDatabase> db =
      SequenceDatabase::FromSequences({Sequence({1, 2})});
  ASSERT_TRUE(db.ok());
  std::vector<SequencePattern> pool = PoolOrDie(*db, 1, 1);
  SequenceFusionOptions options;
  options.min_support_count = 0;
  EXPECT_FALSE(RunSequenceFusion(*db, pool, options).ok());
  options.min_support_count = 1;
  options.tau = 2.0;
  EXPECT_FALSE(RunSequenceFusion(*db, pool, options).ok());
  options.tau = 0.5;
  options.k = 0;
  EXPECT_FALSE(RunSequenceFusion(*db, pool, options).ok());
  options.k = 5;
  EXPECT_FALSE(RunSequenceFusion(*db, {}, options).ok());
}

TEST(SequenceFusionTest, RecoversPlantedColossalSubsequences) {
  SequenceScenarioOptions scenario;
  scenario.num_sequences = 150;
  scenario.planted_lengths = {28, 20};
  scenario.noise_insertions = 12;
  scenario.seed = 7;
  LabeledSequenceDatabase labeled = MakePlantedSequenceDatabase(scenario);

  std::vector<SequencePattern> pool =
      PoolOrDie(labeled.db, labeled.min_support_count, 2);
  ASSERT_GT(pool.size(), 10u);

  SequenceFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.tau = 0.5;
  options.k = 30;
  options.seed = 3;
  StatusOr<SequenceFusionResult> result =
      RunSequenceFusion(labeled.db, std::move(pool), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());

  // Every planted colossal subsequence must be recovered: either exactly
  // or as a subsequence of a returned (noisier) super-pattern.
  for (const Sequence& planted : labeled.planted) {
    bool covered = false;
    for (const SequencePattern& pattern : result->patterns) {
      if (planted.IsSubsequenceOf(pattern.sequence)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << planted.ToString();
  }
  // The longest returned pattern should be colossal-scale (≥ the longest
  // planted pattern; noise can extend it slightly).
  EXPECT_GE(result->patterns[0].size(), 28);
  // Everything returned must be genuinely frequent.
  for (const SequencePattern& pattern : result->patterns) {
    EXPECT_GE(pattern.support, labeled.min_support_count);
    EXPECT_EQ(pattern.support, labeled.db.Support(pattern.sequence));
  }
}

TEST(SequenceFusionTest, DeterministicForFixedSeed) {
  SequenceScenarioOptions scenario;
  scenario.num_sequences = 90;
  scenario.planted_lengths = {15, 12};
  scenario.seed = 21;
  LabeledSequenceDatabase labeled = MakePlantedSequenceDatabase(scenario);

  SequenceFusionOptions options;
  options.min_support_count = labeled.min_support_count;
  options.k = 10;
  options.seed = 77;
  StatusOr<SequenceFusionResult> a = RunSequenceFusion(
      labeled.db, PoolOrDie(labeled.db, labeled.min_support_count, 2),
      options);
  StatusOr<SequenceFusionResult> b = RunSequenceFusion(
      labeled.db, PoolOrDie(labeled.db, labeled.min_support_count, 2),
      options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->patterns.size(), b->patterns.size());
  for (size_t i = 0; i < a->patterns.size(); ++i) {
    EXPECT_EQ(a->patterns[i].sequence, b->patterns[i].sequence);
  }
}

TEST(SequenceFusionTest, SmallPoolConvergesImmediately) {
  StatusOr<SequenceDatabase> db = SequenceDatabase::FromSequences(
      {Sequence({1, 2, 3}), Sequence({1, 2, 3})});
  ASSERT_TRUE(db.ok());
  SequenceFusionOptions options;
  options.min_support_count = 2;
  options.k = 50;
  StatusOr<SequenceFusionResult> result =
      RunSequenceFusion(*db, PoolOrDie(*db, 2, 2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->iterations, 0);
}

}  // namespace
}  // namespace colossal
