#include "data/matrix_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace colossal {
namespace {

TEST(MatrixIoTest, ParsesCommaSeparatedMatrix) {
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix("1,0,0,1\n0,1,0,1\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 2);
  EXPECT_EQ(db->transaction(0), Itemset({0, 3}));
  EXPECT_EQ(db->transaction(1), Itemset({1, 3}));
}

TEST(MatrixIoTest, ParsesWhitespaceSeparatedMatrix) {
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix("1 1 0\n0 1 1\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction(0), Itemset({0, 1}));
}

TEST(MatrixIoTest, ParsesPackedMatrix) {
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix("101\n011\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction(0), Itemset({0, 2}));
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix("1,0\n1,0,1\n");
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(MatrixIoTest, RejectsNonBinaryCells) {
  EXPECT_FALSE(ParseBinaryMatrix("1,2\n").ok());
  EXPECT_FALSE(ParseBinaryMatrix("1,x\n").ok());
}

TEST(MatrixIoTest, RejectsAllZeroRow) {
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix("1,1\n0,0\n");
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("no 1-cells"), std::string::npos);
}

TEST(MatrixIoTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseBinaryMatrix("").ok());
  EXPECT_FALSE(ParseBinaryMatrix("\n\n").ok());
}

TEST(MatrixIoTest, RoundTripsThroughString) {
  const std::string text = "1,0,1\n0,1,1\n";
  StatusOr<TransactionDatabase> db = ParseBinaryMatrix(text);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(ToBinaryMatrixString(*db), text);
}

TEST(MatrixIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/colossal_matrix.csv";
  StatusOr<TransactionDatabase> original = ParseBinaryMatrix("1,1\n1,0\n");
  ASSERT_TRUE(original.ok());
  {
    std::ofstream out(path);
    out << ToBinaryMatrixString(*original);
  }
  StatusOr<TransactionDatabase> reloaded = ReadBinaryMatrixFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ToBinaryMatrixString(*reloaded), ToBinaryMatrixString(*original));
  std::remove(path.c_str());
}

TEST(MatrixIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadBinaryMatrixFile("/no/such/matrix.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace colossal
