// Ablation: variable merge depth in Fusion(α.CoreList). The paper's
// Fusion fuses *subsets* of the CoreList, so one seed can emit
// super-patterns of several depths; our implementation mirrors that with
// saturating first attempts plus randomly-capped later attempts
// (variable_merge_depth = true). This ablation compares that against
// always-saturating fusion on the Replace stand-in: without depth
// variety the result set collapses onto a handful of attractor patterns
// and the approximation error stops improving with K.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/evaluation.h"
#include "core/pattern_fusion.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeProgramTraceLike(42);

  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::fprintf(stderr, "closed mining failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  std::vector<Itemset> complete;
  for (const FrequentItemset& pattern : closed->patterns) {
    complete.push_back(pattern.items);
  }
  const std::vector<Itemset> q39 = FilterBySize(complete, 39);

  TablePrinter table({"variable depth", "K", "result patterns",
                      "err size>=39", "size44 found/3"});

  for (bool variable : {false, true}) {
    for (int k : {50, 200}) {
      StatusOr<std::vector<Pattern>> pool =
          BuildInitialPool(labeled.db, labeled.min_support_count, 3);
      if (!pool.ok()) {
        std::fprintf(stderr, "pool failed: %s\n",
                     pool.status().ToString().c_str());
        return 1;
      }
      PatternFusionOptions options;
      options.min_support_count = labeled.min_support_count;
      options.tau = 0.5;
      options.k = k;
      options.seed = 5 + static_cast<uint64_t>(k);
      options.variable_merge_depth = variable;
      StatusOr<PatternFusionResult> result =
          RunPatternFusion(labeled.db, *std::move(pool), options);
      if (!result.ok()) {
        std::fprintf(stderr, "fusion failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::vector<Itemset> mined;
      for (const Pattern& pattern : result->patterns) {
        mined.push_back(pattern.items);
      }
      const std::vector<Itemset> p39 = FilterBySize(mined, 39);
      std::string error_cell = "-";
      if (!p39.empty()) {
        error_cell = TablePrinter::FormatDouble(
            EvaluateApproximation(p39, q39).error, 4);
      }
      int size44 = 0;
      for (const Itemset& path : labeled.planted) {
        for (const Itemset& pattern : mined) {
          if (pattern == path) {
            ++size44;
            break;
          }
        }
      }
      table.AddRow({variable ? "on" : "off", std::to_string(k),
                    std::to_string(mined.size()), error_cell,
                    std::to_string(size44)});
    }
  }

  std::printf("Ablation — fusion merge-depth variety on the Replace "
              "stand-in (σ = 0.03, τ = 0.5)\n\n");
  table.Print(std::cout);
  return 0;
}
