// Ablation: the seed count K. The paper states (Figure 8 discussion)
// that "better approximations are achieved if more seed patterns are
// selected"; this sweep quantifies that on the microarray stand-in by
// counting recovered planted colossal patterns as K grows.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "data/generators.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeMicroarrayLike(42);
  TablePrinter table(
      {"K", "patterns", "recovered/22", "top5 recovered/5", "seconds"});

  for (int k : {10, 25, 50, 100, 200}) {
    // Average recovery over a few RNG seeds so small-K noise is visible
    // but not dominant.
    int recovered_total = 0;
    int top5_total = 0;
    int64_t patterns_total = 0;
    double seconds_total = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      ColossalMinerOptions options;
      options.min_support_count = 30;
      options.initial_pool_max_size = 2;
      options.tau = 0.5;
      options.k = k;
      options.seed = static_cast<uint64_t>(trial) * 101 + 7;
      Stopwatch watch;
      StatusOr<ColossalMiningResult> result =
          MineColossal(labeled.db, options);
      if (!result.ok()) {
        std::fprintf(stderr, "k=%d failed: %s\n", k,
                     result.status().ToString().c_str());
        return 1;
      }
      seconds_total += watch.ElapsedSeconds();
      patterns_total += static_cast<int64_t>(result->patterns.size());
      for (size_t p = 0; p < labeled.planted.size(); ++p) {
        for (const Pattern& pattern : result->patterns) {
          if (pattern.items == labeled.planted[p]) {
            ++recovered_total;
            if (p < 5) ++top5_total;
            break;
          }
        }
      }
    }
    table.AddRow(
        {std::to_string(k),
         TablePrinter::FormatDouble(
             static_cast<double>(patterns_total) / trials, 1),
         TablePrinter::FormatDouble(
             static_cast<double>(recovered_total) / trials, 1),
         TablePrinter::FormatDouble(static_cast<double>(top5_total) / trials,
                                    1),
         TablePrinter::FormatSeconds(seconds_total / trials)});
  }

  std::printf("Ablation — seeds per iteration K on the ALL stand-in "
              "(σ = 30/38, τ = 0.5, mean of 3 runs)\n\n");
  table.Print(std::cout);
  return 0;
}
