// Figure 9: mining-result comparison on the ALL (microarray) stand-in at
// σ = 30/38 — for each colossal pattern size (> 70), the number of
// patterns in the complete closed set vs the number Pattern-Fusion
// recovered (K = 100, initial pool of size ≤ 2, as in the paper).
//
// The stand-in plants the paper's exact complete-set histogram
// (110, 107, 102, 91, 86, 84×2, 83×6, 82, 77×2, 76, 75, 74, 73×2, 71),
// so the "complete set" column must equal the paper's; the
// Pattern-Fusion column is measured.
//
// Output: the Figure 9 table plus a recovered-total line.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/pattern_report.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeMicroarrayLike(42);

  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::fprintf(stderr, "closed mining failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }

  ColossalMinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 100;
  options.seed = 1;
  StatusOr<ColossalMiningResult> fusion = MineColossal(labeled.db, options);
  if (!fusion.ok()) {
    std::fprintf(stderr, "pattern fusion failed: %s\n",
                 fusion.status().ToString().c_str());
    return 1;
  }

  std::vector<Itemset> colossal_reference;
  for (const FrequentItemset& pattern : closed->patterns) {
    if (pattern.items.size() > 70) colossal_reference.push_back(pattern.items);
  }
  const std::vector<Itemset> mined = ItemsetsOf(fusion->patterns);
  const RecoveryReport recovery = ScoreRecovery(mined, colossal_reference);

  std::vector<Itemset> recovered;
  for (int index : recovery.exact_indices) {
    recovered.push_back(colossal_reference[static_cast<size_t>(index)]);
  }
  const auto complete_by_size = SizeHistogram(colossal_reference, 70);
  auto recovered_by_size = SizeHistogram(recovered, 70);

  TablePrinter table({"pattern size", "complete set", "pattern-fusion"});
  for (const auto& [size, count] : complete_by_size) {
    table.AddRow({std::to_string(size), std::to_string(count),
                  std::to_string(recovered_by_size[size])});
  }

  std::printf("Figure 9 — mining result comparison on the ALL stand-in "
              "(σ = 30/38, K = 100, pool size ≤ 2 with %lld patterns)\n\n",
              static_cast<long long>(fusion->initial_pool_size));
  table.Print(std::cout);

  std::vector<Itemset> above_85;
  for (const Itemset& reference : colossal_reference) {
    if (reference.size() > 85) above_85.push_back(reference);
  }
  const RecoveryReport recovery_85 = ScoreRecovery(mined, above_85);
  std::printf("\nrecovered %d of %d colossal patterns; all above size 85: %s\n",
              recovery.exact, recovery.total,
              recovery_85.exact == recovery_85.total ? "YES" : "no");
  return 0;
}
