// Ablation: the initial-pool size bound (the "small size, e.g., 3" of
// §2.3 phase 1). Larger bounds give fusion more — and more specific —
// core descendants to start from, at the cost of mining and scanning a
// much bigger pool. The paper uses ≤ 2 or ≤ 3 depending on the dataset;
// this sweep shows why on the Replace stand-in.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "data/generators.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeProgramTraceLike(42);
  TablePrinter table({"pool bound", "pool size", "paths found/3", "largest",
                      "seconds"});

  for (int bound : {1, 2, 3}) {
    ColossalMinerOptions options;
    options.min_support_count = labeled.min_support_count;
    options.initial_pool_max_size = bound;
    options.tau = 0.5;
    options.k = 100;
    options.seed = 5;
    Stopwatch watch;
    StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
    if (!result.ok()) {
      std::fprintf(stderr, "bound=%d failed: %s\n", bound,
                   result.status().ToString().c_str());
      return 1;
    }
    int paths = 0;
    for (const Itemset& path : labeled.planted) {
      for (const Pattern& pattern : result->patterns) {
        if (pattern.items == path) {
          ++paths;
          break;
        }
      }
    }
    table.AddRow({std::to_string(bound),
                  std::to_string(result->initial_pool_size),
                  std::to_string(paths),
                  std::to_string(result->patterns.empty()
                                     ? 0
                                     : result->patterns[0].size()),
                  TablePrinter::FormatSeconds(watch.ElapsedSeconds())});
  }

  std::printf("Ablation — initial pool bound on the Replace stand-in "
              "(σ = 0.03, τ = 0.5, K = 100)\n\n");
  table.Print(std::cout);
  return 0;
}
