// Reference point: greedy K-center. §3.2 observes that the best size-K
// approximation of the complete pattern set is the K-Center problem in
// the edit-distance metric space. The greedy farthest-point traversal is
// a 2-approximation for K-center — but it needs the COMPLETE set as
// input, so it is a quality ceiling, not a mining algorithm. This bench
// compares, on the Replace stand-in's complete closed set, the paper's
// approximation error Δ for: Pattern-Fusion (mines from scratch),
// uniform sampling of the complete set, and greedy K-center over the
// complete set.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/evaluation.h"
#include "core/kcenter.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeProgramTraceLike(42);
  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::fprintf(stderr, "closed mining failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  std::vector<Itemset> complete;
  for (const FrequentItemset& pattern : closed->patterns) {
    complete.push_back(pattern.items);
  }

  TablePrinter table({"K", "pf error", "uniform error", "kcenter error",
                      "kcenter objective"});
  for (int k : {25, 50, 100, 200}) {
    ColossalMinerOptions options;
    options.min_support_count = labeled.min_support_count;
    options.initial_pool_max_size = 3;
    options.tau = 0.5;
    options.k = k;
    options.seed = 11;
    StatusOr<ColossalMiningResult> fusion = MineColossal(labeled.db, options);
    if (!fusion.ok()) {
      std::fprintf(stderr, "fusion failed: %s\n",
                   fusion.status().ToString().c_str());
      return 1;
    }
    std::vector<Itemset> mined;
    for (const Pattern& pattern : fusion->patterns) {
      mined.push_back(pattern.items);
    }
    const double pf_error = EvaluateApproximation(mined, complete).error;

    Rng rng(static_cast<uint64_t>(k) * 13 + 1);
    const std::vector<Itemset> uniform = UniformSample(complete, k, rng);
    const double uniform_error =
        EvaluateApproximation(uniform, complete).error;

    const std::vector<Itemset> centers = GreedyKCenters(complete, k);
    const double kcenter_error =
        EvaluateApproximation(centers, complete).error;

    table.AddRow({std::to_string(k), TablePrinter::FormatDouble(pf_error, 4),
                  TablePrinter::FormatDouble(uniform_error, 4),
                  TablePrinter::FormatDouble(kcenter_error, 4),
                  std::to_string(KCenterObjective(centers, complete))});
  }

  std::printf("Reference — Δ against the full closed set on the Replace "
              "stand-in (%zu patterns): Pattern-Fusion vs uniform sampling "
              "vs greedy K-center (needs the complete set)\n\n",
              complete.size());
  table.Print(std::cout);
  return 0;
}
