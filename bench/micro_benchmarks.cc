// Micro benchmarks (google-benchmark) for the kernels Pattern-Fusion's
// wall-clock consists of: bitset algebra on support sets, support-set
// materialization, pattern-distance ball queries, single fusions, and
// the bounded miners used for initial pools.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/bitvector.h"
#include "common/bitvector_kernels.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/pattern.h"
#include "core/pattern_distance.h"
#include "core/pattern_fusion.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "data/snapshot_io.h"
#include "mining/apriori.h"
#include "mining/closed_miner.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "obs/metrics.h"
#include "service/dataset_registry.h"
#include "service/mining_service.h"
#include "shard/shard_planner.h"
#include "shard/sharded_miner.h"

namespace colossal {
namespace {

Bitvector RandomBits(int64_t num_bits, double density, uint64_t seed) {
  Rng rng(seed);
  Bitvector bits(num_bits);
  for (int64_t i = 0; i < num_bits; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

void BM_BitvectorAndCount(benchmark::State& state) {
  const int64_t num_bits = state.range(0);
  const Bitvector a = RandomBits(num_bits, 0.4, 1);
  const Bitvector b = RandomBits(num_bits, 0.4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitvector::AndCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() * num_bits);
}
BENCHMARK(BM_BitvectorAndCount)->Arg(38)->Arg(4395)->Arg(100000);

void BM_JaccardDistance(benchmark::State& state) {
  const int64_t num_bits = state.range(0);
  const Bitvector a = RandomBits(num_bits, 0.4, 1);
  const Bitvector b = RandomBits(num_bits, 0.4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitvector::JaccardDistance(a, b));
  }
}
BENCHMARK(BM_JaccardDistance)->Arg(38)->Arg(4395);

void BM_SupportSet(benchmark::State& state) {
  LabeledDatabase labeled = MakeProgramTraceLike(1);
  const Itemset& path = labeled.planted[0];  // 44 items
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeled.db.SupportSet(path));
  }
}
BENCHMARK(BM_SupportSet);

void BM_BallQuery(benchmark::State& state) {
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(labeled.db, 30, 2);
  const Pattern center = MakePattern(labeled.db, labeled.planted[0]);
  const double radius = BallRadius(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BallQuery(*pool, center, radius));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pool->size()));
}
BENCHMARK(BM_BallQuery);

void BM_FuseOnce(benchmark::State& state) {
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  StatusOr<std::vector<Pattern>> pool = BuildInitialPool(labeled.db, 30, 2);
  const Pattern center = MakePattern(labeled.db, Itemset({0, 1}));
  std::vector<Pattern> pool_with_center = *pool;
  pool_with_center.push_back(center);
  const int64_t seed_index =
      static_cast<int64_t>(pool_with_center.size()) - 1;
  const std::vector<int64_t> ball =
      BallQuery(pool_with_center, center, BallRadius(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FuseOnce(pool_with_center, ball, seed_index, 30, 0.5));
  }
}
BENCHMARK(BM_FuseOnce);

void BM_AprioriPoolTrace(benchmark::State& state) {
  LabeledDatabase labeled = MakeProgramTraceLike(1);
  MinerOptions options;
  options.min_support_count = labeled.min_support_count;
  options.max_pattern_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineApriori(labeled.db, options));
  }
}
BENCHMARK(BM_AprioriPoolTrace)->Arg(2)->Arg(3);

void BM_EclatRandom(benchmark::State& state) {
  RandomDatabaseOptions db_options;
  db_options.num_transactions = 200;
  db_options.num_items = 24;
  db_options.density = 0.3;
  db_options.seed = 3;
  TransactionDatabase db = MakeRandomDatabase(db_options);
  MinerOptions options;
  options.min_support_count = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineEclat(db, options));
  }
}
BENCHMARK(BM_EclatRandom);

void BM_FpGrowthRandom(benchmark::State& state) {
  RandomDatabaseOptions db_options;
  db_options.num_transactions = 200;
  db_options.num_items = 24;
  db_options.density = 0.3;
  db_options.seed = 3;
  TransactionDatabase db = MakeRandomDatabase(db_options);
  MinerOptions options;
  options.min_support_count = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFpGrowth(db, options));
  }
}
BENCHMARK(BM_FpGrowthRandom);

void BM_ClosedMicroarray(benchmark::State& state) {
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  MinerOptions options;
  options.min_support_count = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineClosed(labeled.db, options));
  }
}
BENCHMARK(BM_ClosedMicroarray);

// --- Bitvector kernels (scalar vs dispatched) -------------------------------
//
// Each benchmark takes Args({num_bits, force_scalar}): force_scalar 1
// pins the portable backend, 0 uses whatever the host dispatches (AVX2
// on the machines these baselines come from) — so the per-size speedup
// is the scalar/dispatched ratio at equal Arg(0). Sizes mirror the
// paper's datasets (38-row microarray, 4,395-row trace) plus a
// 100k-row stress size where the vector loops dominate.

void KernelSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t num_bits : {38, 4395, 100000}) {
    bench->Args({num_bits, 0})->Args({num_bits, 1});
  }
}

class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) { SetBitvectorForceScalar(force); }
  ~ForceScalarGuard() { SetBitvectorForceScalar(false); }
};

void BM_KernelAndCount(benchmark::State& state) {
  ForceScalarGuard guard(state.range(1) != 0);
  const int64_t num_bits = state.range(0);
  const Bitvector a = RandomBits(num_bits, 0.4, 1);
  const Bitvector b = RandomBits(num_bits, 0.4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitvector::AndCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() * num_bits);
}
BENCHMARK(BM_KernelAndCount)->Apply(KernelSizes);

void BM_KernelAndNone(benchmark::State& state) {
  ForceScalarGuard guard(state.range(1) != 0);
  const int64_t num_bits = state.range(0);
  // Sparse operands with no shared bits: the worst case (full scan —
  // any shared bit would early-exit).
  Bitvector a(num_bits);
  Bitvector b(num_bits);
  for (int64_t i = 0; i < num_bits; i += 2) {
    a.Set(i);
    if (i + 1 < num_bits) b.Set(i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitvector::AndNone(a, b));
  }
  state.SetItemsProcessed(state.iterations() * num_bits);
}
BENCHMARK(BM_KernelAndNone)->Apply(KernelSizes);

void BM_KernelCount(benchmark::State& state) {
  ForceScalarGuard guard(state.range(1) != 0);
  const Bitvector a = RandomBits(state.range(0), 0.4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelCount)->Apply(KernelSizes);

void BM_KernelAndWith(benchmark::State& state) {
  ForceScalarGuard guard(state.range(1) != 0);
  const Bitvector a = RandomBits(state.range(0), 0.4, 1);
  const Bitvector b = RandomBits(state.range(0), 0.4, 2);
  Bitvector dst = a;
  for (auto _ : state) {
    dst.AndWith(b);
    benchmark::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelAndWith)->Apply(KernelSizes);

void BM_KernelOrWithShifted(benchmark::State& state) {
  ForceScalarGuard guard(state.range(1) != 0);
  const int64_t num_bits = state.range(0);
  const Bitvector src = RandomBits(num_bits, 0.4, 1);
  Bitvector dst(num_bits + 137);  // offset 37: word shift + carry path
  for (auto _ : state) {
    dst.OrWithShifted(src, 37);
    benchmark::DoNotOptimize(dst);
  }
  state.SetItemsProcessed(state.iterations() * num_bits);
}
BENCHMARK(BM_KernelOrWithShifted)->Apply(KernelSizes);

// --- Arena vs heap mine -----------------------------------------------------
//
// The whole pipeline with (Arg 1) and without (Arg 0) a request arena:
// the delta is what replacing per-tidset heap allocations with bump
// allocation buys end to end. Output is byte-identical either way (the
// determinism tests hold the proof); arena_peak_kb reports the arena's
// high-water mark.

void BM_MineColossalArena(benchmark::State& state) {
  const bool use_arena = state.range(0) != 0;
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  ColossalMinerOptions options;
  options.min_support_count = 30;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 19;
  Arena arena;
  for (auto _ : state) {
    if (use_arena) {
      arena.Reset();
      benchmark::DoNotOptimize(MineColossal(labeled.db, options, &arena));
    } else {
      benchmark::DoNotOptimize(MineColossal(labeled.db, options));
    }
  }
  if (use_arena) {
    state.counters["arena_peak_kb"] =
        static_cast<double>(arena.high_water_bytes()) / 1024.0;
  }
}
BENCHMARK(BM_MineColossalArena)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- Request modes ----------------------------------------------------------
//
// The two request-grammar modes end to end. Results are recorded in
// BENCH_modes.json; refresh with --benchmark_filter='TopK|Constrained'.

// Top-k truncation vs. the equivalent full-K run: Arg is the requested
// top_k (0 = the k=40 baseline). The answer is a prefix of the
// baseline's, so the delta is pure result-shaping cost — it should be
// noise.
void BM_TopKMine(benchmark::State& state) {
  const int top_k = static_cast<int>(state.range(0));
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  ColossalMinerOptions options;
  options.min_support_count = 30;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 19;
  options.top_k = top_k;
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    benchmark::DoNotOptimize(MineColossal(labeled.db, options, &arena));
  }
}
BENCHMARK(BM_TopKMine)->Arg(0)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

// Constraint pushdown: Arg is how many of the lowest item ids are
// excluded. Excluded items are skipped before their Bitvectors are
// materialized, so time and arena_peak_kb both fall as the exclude
// list grows — the counter is the proof the skip happens in the pool
// miner, not in a post-filter.
void BM_ConstrainedMine(benchmark::State& state) {
  const int excluded = static_cast<int>(state.range(0));
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  ColossalMinerOptions options;
  options.min_support_count = 30;
  options.initial_pool_max_size = 2;
  options.tau = 0.5;
  options.k = 40;
  options.seed = 19;
  for (int i = 0; i < excluded; ++i) {
    options.constraints.exclude.push_back(static_cast<ItemId>(i));
  }
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    benchmark::DoNotOptimize(MineColossal(labeled.db, options, &arena));
  }
  state.counters["arena_peak_kb"] =
      static_cast<double>(arena.high_water_bytes()) / 1024.0;
}
BENCHMARK(BM_ConstrainedMine)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// --- Thread scaling ---------------------------------------------------------
// The fig10-style workload (microarray stand-in, pool bound 2, τ = 0.5,
// K = 100) at 1/2/4/N threads. Results are recorded in BENCH_threads.json;
// run with --benchmark_filter=ThreadScaling to refresh them. Output is
// bit-identical across thread counts, so these measure pure speedup.

void ThreadArgs(benchmark::internal::Benchmark* bench) {
  const int hardware = ResolveNumThreads(0);
  for (int threads : {1, 2, 4}) bench->Arg(threads);
  if (hardware != 1 && hardware != 2 && hardware != 4) bench->Arg(hardware);
}

// K ball queries sharded across the pool of workers — the per-iteration
// scan the fusion engine parallelizes.
void BM_ThreadScalingBallQueries(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, 30, 2, PoolMiner::kApriori, 1);
  if (!pool.ok() || pool->empty()) {
    state.SkipWithError("initial pool unavailable");
    return;
  }
  const double radius = BallRadius(0.5);
  constexpr int64_t kCenters = 100;  // K in the fig10 configuration
  const int64_t pool_size = static_cast<int64_t>(pool->size());
  ThreadPool workers(threads);
  for (auto _ : state) {
    auto balls = ParallelMap(&workers, kCenters, [&](int64_t i) {
      return BallQuery(*pool, (*pool)[static_cast<size_t>(i % pool_size)],
                       radius);
    });
    benchmark::DoNotOptimize(balls);
  }
  state.SetItemsProcessed(state.iterations() * kCenters *
                          static_cast<int64_t>(pool->size()));
}
BENCHMARK(BM_ThreadScalingBallQueries)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// One full fusion iteration (seed draws + ball queries + fusions +
// retention) through the engine itself.
void BM_ThreadScalingFusionIteration(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  StatusOr<std::vector<Pattern>> pool =
      BuildInitialPool(labeled.db, 30, 2, PoolMiner::kApriori, 1);
  if (!pool.ok() || pool->empty()) {
    state.SkipWithError("initial pool unavailable");
    return;
  }
  PatternFusionOptions options;
  options.min_support_count = 30;
  options.tau = 0.5;
  options.k = 100;
  options.max_iterations = 1;
  options.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPatternFusion(labeled.db, *pool, options));
  }
}
BENCHMARK(BM_ThreadScalingFusionIteration)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// Initial-pool mining (Apriori level counting sharded by join row).
void BM_ThreadScalingPoolBuild(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  LabeledDatabase labeled = MakeMicroarrayLike(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildInitialPool(labeled.db, 30, 2, PoolMiner::kApriori, threads));
  }
}
BENCHMARK(BM_ThreadScalingPoolBuild)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

// --- Service layer ----------------------------------------------------------
// The request path of src/service/: what a request costs when it misses
// everything (disk load + index build + mine), when the dataset registry
// already holds the database, and when the result cache already holds the
// answer. Results are recorded in BENCH_service.json; refresh with
// --benchmark_filter=Service. The ISSUE-2 acceptance ratio is
// BM_ServiceMineCold / BM_ServiceResultCacheHit.

// One on-disk dataset pair shared by the service benches, written once.
struct ServiceBenchFixture {
  std::string fimi_path;
  std::string snapshot_path;
  MineRequest request;

  ServiceBenchFixture() {
    fimi_path = "/tmp/colossal_bench_service.fimi";
    snapshot_path = "/tmp/colossal_bench_service.snap";
    const TransactionDatabase db = MakeDiagPlus(24, 12).db;
    if (!WriteFimiFile(db, fimi_path).ok() ||
        !WriteSnapshotFile(db, snapshot_path).ok()) {
      std::abort();
    }
    request.dataset_path = fimi_path;
    request.options.sigma = -1.0;
    request.options.min_support_count = 12;
    request.options.initial_pool_max_size = 2;
    request.options.k = 40;
  }
};

const ServiceBenchFixture& ServiceFixture() {
  static const ServiceBenchFixture* fixture = new ServiceBenchFixture();
  return *fixture;
}

// Text ingestion vs. snapshot ingestion of the same trace-shaped
// dataset (4,395 × 57): the snapshot skips parsing and the vertical
// index build.
void BM_ServiceFimiParse(benchmark::State& state) {
  const std::string text = ToFimiString(MakeProgramTraceLike(1).db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseFimi(text));
  }
}
BENCHMARK(BM_ServiceFimiParse)->Unit(benchmark::kMillisecond);

void BM_ServiceSnapshotParse(benchmark::State& state) {
  const std::string data = ToSnapshotString(MakeProgramTraceLike(1).db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseSnapshot(data));
  }
}
BENCHMARK(BM_ServiceSnapshotParse)->Unit(benchmark::kMillisecond);

// Dataset acquisition: a cold registry (disk load every time) vs. a
// warm registry handing out the shared immutable database.
void BM_ServiceRegistryColdLoad(benchmark::State& state) {
  const ServiceBenchFixture& fixture = ServiceFixture();
  for (auto _ : state) {
    DatasetRegistry registry;
    benchmark::DoNotOptimize(registry.Get(fixture.fimi_path));
  }
}
BENCHMARK(BM_ServiceRegistryColdLoad);

void BM_ServiceRegistryHit(benchmark::State& state) {
  const ServiceBenchFixture& fixture = ServiceFixture();
  DatasetRegistry registry;
  if (!registry.Get(fixture.fimi_path).ok()) {
    state.SkipWithError("dataset unavailable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Get(fixture.fimi_path));
  }
}
BENCHMARK(BM_ServiceRegistryHit);

// End-to-end request cost: everything cold (fresh service per
// iteration: disk load + index build + Pattern-Fusion) vs. a result
// cache hit on a warm service.
void BM_ServiceMineCold(benchmark::State& state) {
  const ServiceBenchFixture& fixture = ServiceFixture();
  for (auto _ : state) {
    MiningService service;
    MiningResponse response = service.Mine(fixture.request);
    if (!response.status.ok()) {
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServiceMineCold)->Unit(benchmark::kMillisecond);

void BM_ServiceResultCacheHit(benchmark::State& state) {
  const ServiceBenchFixture& fixture = ServiceFixture();
  MiningService service;
  if (!service.Mine(fixture.request).status.ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    MiningResponse response = service.Mine(fixture.request);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServiceResultCacheHit);

// --- Sharding ---------------------------------------------------------------
// The sharded mining path of src/shard/: the stitch kernel, manifest
// planning/writing, and exact sharded mining vs. the unsharded
// reference at several shard counts. Results are recorded in
// BENCH_shard.json; refresh with --benchmark_filter=Shard.

void BM_ShardStitchSupportSet(benchmark::State& state) {
  // One OrWithShifted of a 1/8-size shard slice into a global support
  // set, at a deliberately word-misaligned offset.
  const int64_t num_bits = state.range(0);
  const Bitvector local = RandomBits(num_bits / 8, 0.4, 7);
  Bitvector global(num_bits);
  const int64_t offset = num_bits / 3 + 1;
  for (auto _ : state) {
    global.OrWithShifted(local, offset);
    benchmark::DoNotOptimize(global);
  }
}
BENCHMARK(BM_ShardStitchSupportSet)->Arg(4395)->Arg(100000);

// One shared sharded fixture: a trace-shaped dataset written once as
// manifests of 1/2/4 shards.
struct ShardBenchFixture {
  TransactionDatabase db;
  std::string manifests[3];  // 1, 2, 4 shards
  ColossalMinerOptions options;

  ShardBenchFixture() : db(MakeDiagPlus(24, 12).db) {
    const int counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      ShardPlanOptions plan_options;
      plan_options.num_shards = counts[i];
      StatusOr<std::vector<ShardRange>> plan = PlanShards(db, plan_options);
      StatusOr<ShardWriteResult> written = plan.ok()
          ? WriteShardedSnapshots(db, *plan, "/tmp",
                                  "colossal_bench_shard_" +
                                      std::to_string(counts[i]))
          : StatusOr<ShardWriteResult>(plan.status());
      if (!written.ok()) std::abort();
      manifests[i] = written->manifest_path;
    }
    options.sigma = -1.0;
    options.min_support_count = 12;
    options.initial_pool_max_size = 2;
    options.k = 40;
  }
};

const ShardBenchFixture& ShardFixture() {
  static const ShardBenchFixture* fixture = new ShardBenchFixture();
  return *fixture;
}

// Disk shard loader for the sharded-mining benches (cold loads, as a
// cold service would pay them).
ShardLoader BenchShardLoader() {
  return [](const std::string& path,
            int64_t /*estimated_bytes*/) -> StatusOr<LoadedShard> {
    StatusOr<TransactionDatabase> db = ReadSnapshotFile(path);
    if (!db.ok()) return db.status();
    LoadedShard shard;
    shard.fingerprint = FingerprintDatabase(*db);
    shard.db = std::make_shared<const TransactionDatabase>(*std::move(db));
    return shard;
  };
}

void BM_ShardPlanAndWrite(benchmark::State& state) {
  const ShardBenchFixture& fixture = ShardFixture();
  ShardPlanOptions plan_options;
  plan_options.num_shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StatusOr<std::vector<ShardRange>> plan =
        PlanShards(fixture.db, plan_options);
    if (!plan.ok()) {
      state.SkipWithError("planning failed");
      return;
    }
    benchmark::DoNotOptimize(
        WriteShardedSnapshots(fixture.db, *plan, "/tmp",
                              "colossal_bench_shard_rewrite"));
  }
}
BENCHMARK(BM_ShardPlanAndWrite)->Arg(4)->Unit(benchmark::kMillisecond);

// Exact sharded mining (disk shard loads included, as a cold service
// would pay them) vs. the unsharded in-memory reference mine. Arg is
// the shard count; 1 isolates the sharding machinery's own overhead.
void BM_ShardedMineExact(benchmark::State& state) {
  const ShardBenchFixture& fixture = ShardFixture();
  const int index = state.range(0) == 1 ? 0 : state.range(0) == 2 ? 1 : 2;
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile(fixture.manifests[index]);
  if (!manifest.ok()) {
    state.SkipWithError("manifest unavailable");
    return;
  }
  ShardedMiner miner(*manifest, BenchShardLoader());
  for (auto _ : state) {
    StatusOr<ColossalMiningResult> result =
        miner.Mine(fixture.options, ShardMergeMode::kExact);
    if (!result.ok()) {
      state.SkipWithError("mine failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ShardedMineExact)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Fan-out sweep: the 4-shard manifest mined cold at shard-parallelism
// {1, 2, 4}. On multi-core the cold wall-time should drop as
// parallelism grows (flat on a single-CPU host); output is
// byte-identical throughout, asserted by sharded_miner_test. Results
// are recorded in BENCH_shard_fanout.json; refresh with
// --benchmark_filter=ShardedMineFanOut.
void BM_ShardedMineFanOut(benchmark::State& state) {
  const ShardBenchFixture& fixture = ShardFixture();
  StatusOr<ShardManifest> manifest =
      ReadShardManifestFile(fixture.manifests[2]);  // 4 shards
  if (!manifest.ok()) {
    state.SkipWithError("manifest unavailable");
    return;
  }
  ShardedMiner miner(*manifest, BenchShardLoader());
  ColossalMinerOptions options = fixture.options;
  options.shard_parallelism = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StatusOr<ColossalMiningResult> result =
        miner.Mine(options, ShardMergeMode::kExact);
    if (!result.ok()) {
      state.SkipWithError("mine failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ShardedMineFanOut)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedMineUnshardedReference(benchmark::State& state) {
  const ShardBenchFixture& fixture = ShardFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineColossal(fixture.db, fixture.options));
  }
}
BENCHMARK(BM_ShardedMineUnshardedReference)->Unit(benchmark::kMillisecond);

// --- Metrics ----------------------------------------------------------------
// The cost of always-on observability: one counter increment and one
// histogram record are what every request pays per metric touched, so
// the per-op overhead here bounds what tracing adds to the hot path.

void BM_MetricsCounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench_counter", "bench");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsCounterIncrementContended(benchmark::State& state) {
  static Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterIncrementContended)->ThreadRange(1, 4);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("bench_seconds", "bench", 1e-9);
  // A realistic spread of latencies so the bucket index path is not
  // branch-predicted into a single bucket.
  int64_t value = 1;
  for (auto _ : state) {
    histogram->Record(value);
    value = value * 2862933555777941757LL + 3037000493LL;
    value &= (int64_t{1} << 40) - 1;
  }
  benchmark::DoNotOptimize(histogram->TotalCount());
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsRenderText(benchmark::State& state) {
  // A registry shaped like the serving stack's: the full metric set the
  // `metrics` word renders per scrape.
  MiningService service;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.metrics().RenderText());
  }
}
BENCHMARK(BM_MetricsRenderText);

void BM_MetricsFlightRecorderRecord(benchmark::State& state) {
  // The always-on per-request cost of the flight recorder: one ring
  // publish of a fully-populated record. Budget class: tens of ns, like
  // Histogram::Record — this runs once per completed request. The
  // recorder is shared across benchmark threads so the multi-threaded
  // runs measure real cursor contention.
  static FlightRecorder recorder;
  FlightRecord record;
  record.start_unix_nanos = 1722500000000000000LL;
  record.dataset_fingerprint = 0x9e3779b97f4a7c15ull;
  record.options_hash = 0x2545f4914f6cdd1dull;
  record.response_bytes = 65536;
  record.total_nanos = 12345678;
  for (int p = 0; p < kNumTracePhases; ++p) record.phase_nanos[p] = 1000 * p;
  SetFlightField(record.transport, "tcp");
  SetFlightField(record.source, "mined");
  SetFlightField(record.status, "OK");
  SetFlightField(record.dataset, "/data/benchmarks/diag_plus_4096.fimi");
  for (auto _ : state) {
    record.id = recorder.MintId();
    recorder.Record(record);
  }
  benchmark::DoNotOptimize(recorder.recorded());
}
BENCHMARK(BM_MetricsFlightRecorderRecord)->ThreadRange(1, 4);

}  // namespace
}  // namespace colossal

BENCHMARK_MAIN();
