// Ablation: the core ratio τ. τ controls both the ball radius r(τ) (how
// much of the pool a seed can see) and the fusion invariant (how far a
// merge may dilute the strongest merged member). The paper fixes τ per
// experiment without reporting a sweep; this ablation shows the
// trade-off on the microarray stand-in: tiny τ admits everything and
// merges greedily toward a few huge attractors, τ → 1 shrinks balls to
// near-duplicates and fusion stalls.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "data/generators.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeMicroarrayLike(42);
  TablePrinter table({"tau", "ball radius", "patterns", "recovered/22",
                      "largest", "seconds"});

  for (double tau : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ColossalMinerOptions options;
    options.min_support_count = 30;
    options.initial_pool_max_size = 2;
    options.tau = tau;
    options.k = 100;
    options.seed = 1;
    Stopwatch watch;
    StatusOr<ColossalMiningResult> result = MineColossal(labeled.db, options);
    if (!result.ok()) {
      std::fprintf(stderr, "tau=%.2f failed: %s\n", tau,
                   result.status().ToString().c_str());
      return 1;
    }
    int recovered = 0;
    for (const Itemset& planted : labeled.planted) {
      for (const Pattern& pattern : result->patterns) {
        if (pattern.items == planted) {
          ++recovered;
          break;
        }
      }
    }
    const double radius = 1.0 - 1.0 / (2.0 / tau - 1.0);
    table.AddRow({TablePrinter::FormatDouble(tau, 2),
                  TablePrinter::FormatDouble(radius, 3),
                  std::to_string(result->patterns.size()),
                  std::to_string(recovered),
                  std::to_string(result->patterns.empty()
                                     ? 0
                                     : result->patterns[0].size()),
                  TablePrinter::FormatSeconds(watch.ElapsedSeconds())});
  }

  std::printf("Ablation — core ratio τ on the ALL stand-in "
              "(σ = 30/38, K = 100)\n\n");
  table.Print(std::cout);
  return 0;
}
