// Figure 6: run time on Diag_n, Pattern-Fusion vs a complete maximal
// miner (the paper's LCM_maximal), as the matrix size n grows with
// σ = n/2.
//
// The complete answer on Diag_n is all C(n, n/2) itemsets of size n/2,
// so any complete miner is exponential in n regardless of implementation
// quality. The baseline runs under a fixed work budget and rows that
// exceed it are marked with '>' — the moral equivalent of the paper's
// ">10 hours" entries. Pattern-Fusion's time stays polynomial: its pool
// is n + C(n,2) patterns and it converges in one or two iterations.
//
// Output: one row per n with both times (seconds).

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "data/generators.h"
#include "mining/maximal_miner.h"

int main() {
  using namespace colossal;

  constexpr int64_t kBaselineNodeBudget = 20'000'000;
  TablePrinter table({"n", "sigma", "lcm_maximal_s", "lcm_patterns",
                      "pattern_fusion_s", "pf_largest"});

  for (int n : {5, 10, 15, 20, 22, 24, 26, 28, 30, 34, 40, 45}) {
    TransactionDatabase db = MakeDiag(n);
    const int64_t min_support = n / 2;

    MinerOptions baseline_options;
    baseline_options.min_support_count = min_support;
    baseline_options.max_nodes = kBaselineNodeBudget;
    Stopwatch baseline_watch;
    StatusOr<MiningResult> baseline = MineMaximal(db, baseline_options);
    const double baseline_seconds = baseline_watch.ElapsedSeconds();
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    const std::string baseline_cell =
        (baseline->stats.budget_exceeded ? ">" : "") +
        TablePrinter::FormatSeconds(baseline_seconds);
    const std::string baseline_count =
        std::to_string(baseline->patterns.size()) +
        (baseline->stats.budget_exceeded ? "+" : "");

    ColossalMinerOptions fusion_options;
    fusion_options.min_support_count = min_support;
    fusion_options.initial_pool_max_size = 2;
    fusion_options.tau = 0.5;
    fusion_options.k = 40;
    fusion_options.seed = 7;
    Stopwatch fusion_watch;
    StatusOr<ColossalMiningResult> fusion = MineColossal(db, fusion_options);
    const double fusion_seconds = fusion_watch.ElapsedSeconds();
    if (!fusion.ok()) {
      std::fprintf(stderr, "pattern fusion failed: %s\n",
                   fusion.status().ToString().c_str());
      return 1;
    }

    table.AddRow({std::to_string(n), std::to_string(min_support),
                  baseline_cell, baseline_count,
                  TablePrinter::FormatSeconds(fusion_seconds),
                  std::to_string(fusion->patterns.empty()
                                     ? 0
                                     : fusion->patterns[0].size())});
  }

  std::printf("Figure 6 — run time on Diag_n (baseline budget %lld nodes; "
              "'>' = budget exceeded)\n\n",
              static_cast<long long>(kBaselineNodeBudget));
  table.Print(std::cout);
  return 0;
}
