// Figure 8: approximation error Δ(A_P^Q) on the Replace stand-in as a
// function of the pattern-size cutoff, for K ∈ {50, 100, 200}.
//
// Q = the complete closed set restricted to patterns of size ≥ cutoff
// (computable exactly at σ = 0.03 on this dataset); P = Pattern-Fusion's
// result under the same restriction. The paper's claims to reproduce:
// errors are small (fractions of an item per pattern), they shrink as
// the cutoff rises, the largest patterns (size 44) are never missed, and
// larger K helps.
//
// Output: one row per cutoff with the error for each K.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/evaluation.h"
#include "data/generators.h"
#include "mining/closed_miner.h"

int main() {
  using namespace colossal;

  LabeledDatabase labeled = MakeProgramTraceLike(42);

  MinerOptions closed_options;
  closed_options.min_support_count = labeled.min_support_count;
  StatusOr<MiningResult> closed = MineClosed(labeled.db, closed_options);
  if (!closed.ok()) {
    std::fprintf(stderr, "closed mining failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  std::vector<Itemset> complete;
  for (const FrequentItemset& pattern : closed->patterns) {
    complete.push_back(pattern.items);
  }

  const std::vector<int> ks = {50, 100, 200};
  std::vector<std::vector<Itemset>> mined_by_k;
  for (int k : ks) {
    ColossalMinerOptions options;
    options.min_support_count = labeled.min_support_count;
    options.initial_pool_max_size = 3;  // the paper's size-≤3 pool
    options.tau = 0.5;
    options.k = k;
    options.seed = 5 + static_cast<uint64_t>(k);
    StatusOr<ColossalMiningResult> fusion = MineColossal(labeled.db, options);
    if (!fusion.ok()) {
      std::fprintf(stderr, "pattern fusion failed: %s\n",
                   fusion.status().ToString().c_str());
      return 1;
    }
    std::vector<Itemset> mined;
    for (const Pattern& pattern : fusion->patterns) {
      mined.push_back(pattern.items);
    }
    mined_by_k.push_back(std::move(mined));
  }

  TablePrinter table({"size >=", "complete", "err K=50", "err K=100",
                      "err K=200", "size44 found"});
  for (int cutoff = 39; cutoff <= 44; ++cutoff) {
    const std::vector<Itemset> q = FilterBySize(complete, cutoff);
    if (q.empty()) continue;
    std::vector<std::string> row = {std::to_string(cutoff),
                                    std::to_string(q.size())};
    int size44_found = 0;
    for (size_t which = 0; which < ks.size(); ++which) {
      const std::vector<Itemset> p = FilterBySize(mined_by_k[which], cutoff);
      if (p.empty()) {
        row.push_back("-");
        continue;
      }
      row.push_back(TablePrinter::FormatDouble(
          EvaluateApproximation(p, q).error, 4));
      if (cutoff == 44) {
        for (const Itemset& path : labeled.planted) {
          for (const Itemset& mined_pattern : p) {
            if (mined_pattern == path) {
              ++size44_found;
              break;
            }
          }
        }
      }
    }
    row.push_back(cutoff == 44
                      ? std::to_string(size44_found) + "/" +
                            std::to_string(labeled.planted.size() * ks.size())
                      : "-");
    table.AddRow(std::move(row));
  }

  std::printf("Figure 8 — approximation error on the Replace stand-in "
              "(σ = 0.03, complete closed set = %zu patterns)\n\n",
              closed->patterns.size());
  table.Print(std::cout);
  return 0;
}
