// Figure 10: run time on the ALL (microarray) stand-in as the minimum
// support threshold decreases from 31 to 21, for three miners:
//
//   * LCM_maximal stand-in — complete maximal mining; explodes once
//     cross-signature item mixes and the confusable block become
//     frequent (σ ≲ 27);
//   * TFP stand-in — top-k closed with the paper's colossal-oriented
//     min-length constraint (min_l = 100, k = 1000): the top-k heap cannot fill, so
//     its dynamic pruning cannot engage and the search degenerates to
//     full closed enumeration — exploding at small σ exactly as the
//     paper shows;
//   * Pattern-Fusion — pool of size ≤ 2, τ = 0.5, K = 100: its cost is
//     dominated by ball queries over the initial pool and stays level.
//
// Baselines run under a node budget; '>' marks budget exhaustion (the
// paper's curves similarly leave the plotted range).

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "data/generators.h"
#include "mining/maximal_miner.h"
#include "mining/topk_miner.h"

int main() {
  using namespace colossal;

  constexpr int64_t kBaselineNodeBudget = 150'000'000;
  LabeledDatabase labeled = MakeMicroarrayLike(42);

  TablePrinter table({"min support", "lcm_maximal_s", "tfp_topk_s",
                      "pattern_fusion_s", "pf_largest"});

  for (int sigma = 31; sigma >= 21; --sigma) {
    MinerOptions maximal_options;
    maximal_options.min_support_count = sigma;
    maximal_options.max_nodes = kBaselineNodeBudget;
    Stopwatch maximal_watch;
    StatusOr<MiningResult> maximal = MineMaximal(labeled.db, maximal_options);
    const double maximal_seconds = maximal_watch.ElapsedSeconds();
    if (!maximal.ok()) {
      std::fprintf(stderr, "maximal failed: %s\n",
                   maximal.status().ToString().c_str());
      return 1;
    }

    TopKOptions topk_options;
    topk_options.k = 1000;
    topk_options.min_pattern_size = 100;
    topk_options.min_support_count = sigma;
    topk_options.max_nodes = kBaselineNodeBudget;
    Stopwatch topk_watch;
    StatusOr<MiningResult> topk = MineTopKClosed(labeled.db, topk_options);
    const double topk_seconds = topk_watch.ElapsedSeconds();
    if (!topk.ok()) {
      std::fprintf(stderr, "topk failed: %s\n",
                   topk.status().ToString().c_str());
      return 1;
    }

    ColossalMinerOptions fusion_options;
    fusion_options.min_support_count = sigma;
    fusion_options.initial_pool_max_size = 2;
    fusion_options.tau = 0.5;
    fusion_options.k = 100;
    fusion_options.seed = 1;
    Stopwatch fusion_watch;
    StatusOr<ColossalMiningResult> fusion =
        MineColossal(labeled.db, fusion_options);
    const double fusion_seconds = fusion_watch.ElapsedSeconds();
    if (!fusion.ok()) {
      std::fprintf(stderr, "pattern fusion failed: %s\n",
                   fusion.status().ToString().c_str());
      return 1;
    }

    table.AddRow(
        {std::to_string(sigma),
         (maximal->stats.budget_exceeded ? ">" : "") +
             TablePrinter::FormatSeconds(maximal_seconds),
         (topk->stats.budget_exceeded ? ">" : "") +
             TablePrinter::FormatSeconds(topk_seconds),
         TablePrinter::FormatSeconds(fusion_seconds),
         std::to_string(
             fusion->patterns.empty() ? 0 : fusion->patterns[0].size())});
  }

  std::printf("Figure 10 — run time on the ALL stand-in vs minimum support "
              "(baseline budget %lld nodes; '>' = budget exceeded)\n\n",
              static_cast<long long>(kBaselineNodeBudget));
  table.Print(std::cout);
  return 0;
}
