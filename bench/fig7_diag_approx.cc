// Figure 7: approximation error Δ(A_P^Q) on Diag_40 (σ = 20) as the
// number of mined patterns K grows, Pattern-Fusion vs uniform sampling
// from the complete answer set.
//
// The complete answer set is all C(40,20) itemsets of size 20 — too big
// to materialize, so (exactly as the paper does) the reference Q is a
// uniform random sample of it. The uniform-sampling baseline "mines" by
// drawing K random members of the complete set. The paper's point:
// Pattern-Fusion's error tracks the sampling baseline, i.e., the fusion
// process does not get stuck in a corner of the pattern space.
//
// Output: one row per K with both errors.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/colossal_miner.h"
#include "core/evaluation.h"
#include "data/generators.h"

namespace {

// A uniform random size-20 subset of the 40 Diag items.
colossal::Itemset RandomHalfSet(colossal::Rng& rng) {
  std::vector<colossal::ItemId> items;
  for (int64_t index : rng.SampleWithoutReplacement(40, 20)) {
    items.push_back(static_cast<colossal::ItemId>(index));
  }
  return colossal::Itemset::FromUnsorted(items);
}

}  // namespace

int main() {
  using namespace colossal;

  TransactionDatabase db = MakeDiag(40);
  constexpr int64_t kMinSupport = 20;
  constexpr int kReferenceSample = 300;

  Rng reference_rng(271828);
  std::vector<Itemset> reference;
  reference.reserve(kReferenceSample);
  for (int i = 0; i < kReferenceSample; ++i) {
    reference.push_back(RandomHalfSet(reference_rng));
  }

  TablePrinter table(
      {"K", "pf_patterns", "pf_error", "uniform_error"});

  for (int k : {50, 100, 150, 200, 250, 300, 350, 400, 450}) {
    ColossalMinerOptions options;
    options.min_support_count = kMinSupport;
    options.initial_pool_max_size = 2;  // the paper's 820-pattern pool
    options.tau = 0.5;
    options.k = k;
    options.seed = static_cast<uint64_t>(k) * 31 + 1;
    StatusOr<ColossalMiningResult> fusion = MineColossal(db, options);
    if (!fusion.ok()) {
      std::fprintf(stderr, "pattern fusion failed: %s\n",
                   fusion.status().ToString().c_str());
      return 1;
    }
    std::vector<Itemset> mined;
    for (const Pattern& pattern : fusion->patterns) {
      mined.push_back(pattern.items);
    }
    const double fusion_error =
        EvaluateApproximation(mined, reference).error;

    Rng baseline_rng(static_cast<uint64_t>(k) * 77 + 5);
    std::vector<Itemset> uniform;
    uniform.reserve(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) uniform.push_back(RandomHalfSet(baseline_rng));
    const double uniform_error =
        EvaluateApproximation(uniform, reference).error;

    table.AddRow({std::to_string(k), std::to_string(mined.size()),
                  TablePrinter::FormatDouble(fusion_error, 4),
                  TablePrinter::FormatDouble(uniform_error, 4)});
  }

  std::printf("Figure 7 — approximation error on Diag_40 (σ = 20), "
              "reference = %d sampled size-20 patterns\n\n",
              kReferenceSample);
  table.Print(std::cout);
  return 0;
}
